// Differential SQL fuzz harness for the morsel-parallel QueryEngine: a
// seeded generator produces hundreds of random queries — FK joins up to 4
// tables, nested AND/OR/NOT predicate trees (IN / BETWEEN / LIKE /
// IS NULL), GROUP BY / HAVING / ORDER BY / LIMIT, NULL-heavy columns,
// occasional cross products — and every query runs on a planner-off
// sequential reference engine and on variant engines crossing
// {planner off, planner on + column statistics, planner on no-stats} x
// {1, 2, 4, 8} threads x {ordered secondary indexes on, off}
// over IMDB, flights, and a synthetic Zipf-skewed-key table, asserting
// byte-identical ResultSets. The index legs are the fuzz-level proof that
// the access path (IndexRangeScan vs FullScan) is a pure cost decision:
// candidates come back in scan order and every conjunct is re-evaluated,
// so not one byte may move when a catalog is attached. All engines share one morsel_rows: the
// morsel decomposition is part of the deterministic plan spec (see
// DESIGN.md "Partitioned build & partial aggregation"); neither thread
// count nor the cost-based planner may change a single byte.
//
// ASQP_SEED overrides the generator seed (CI runs three values under
// TSan), so a reported failure reproduces with the printed seed + index.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "exec/executor.h"
#include "plan/stats.h"
#include "sql/ast.h"
#include "sql/binder.h"
#include "storage/database.h"
#include "storage/index.h"
#include "tests/testing.h"
#include "util/exec_context.h"
#include "util/fault_injector.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workloadgen/generator.h"

namespace asqp {
namespace exec {
namespace {

using sql::BinOp;
using sql::Expr;
using sql::ExprPtr;
using storage::Value;
using storage::ValueType;

// TSan slows execution 5-15x; shrink the data, keep the 200+ query count
// (the acceptance bar holds under -DASQP_SANITIZE=thread).
#ifdef ASQP_SANITIZE_THREAD
constexpr double kDataScale = 0.01;
constexpr size_t kSkewedRows = 600;
#else
constexpr double kDataScale = 0.02;
constexpr size_t kSkewedRows = 2400;
#endif
constexpr size_t kQueriesPerDataset = 210;

// Tiny morsels force many chunks per operator even on test-sized tables.
constexpr size_t kMorselRows = 64;

uint64_t SeedFromEnv() {
  const char* env = std::getenv("ASQP_SEED");
  if (env == nullptr || *env == '\0') return 20260805;
  return std::strtoull(env, nullptr, 10);
}

QueryEngine MakeEngine(size_t threads, bool planner = true,
                       std::shared_ptr<const plan::StatsCatalog> stats =
                           nullptr,
                       std::shared_ptr<const storage::IndexCatalog> indexes =
                           nullptr) {
  ExecOptions options;
  // A tight intermediate cap keeps runaway join blowups cheap; capped
  // queries must still fail with the same Status code on every engine.
  options.max_intermediate_rows = 400'000;
  options.num_threads = threads;
  options.morsel_rows = kMorselRows;
  options.enable_planner = planner;
  options.planner_stats = std::move(stats);
  options.index_catalog = std::move(indexes);
  return QueryEngine(options);
}

/// A dataset the fuzzer can draw from: database + FK join graph.
struct FuzzDataset {
  std::string name;
  std::shared_ptr<storage::Database> db;
  std::vector<workloadgen::FkEdge> fks;
};

/// Synthetic skewed-key tables: `fact.k` follows a Zipf distribution over
/// `dim.k` (a handful of keys own most rows — the partitioned build's
/// worst case), `detail.fact_id` is Zipf over fact ids, and grp / val /
/// note / amt are NULL-heavy (~30%), so group keys, aggregates, and
/// predicates all hit NULLs constantly.
FuzzDataset MakeSkewed() {
  using storage::Schema;
  using storage::Table;

  util::Rng rng(7);
  auto db = std::make_shared<storage::Database>();

  constexpr size_t kDims = 48;
  auto dim = std::make_shared<Table>(
      "dim", Schema({{"k", ValueType::kInt64},
                     {"label", ValueType::kString},
                     {"weight", ValueType::kDouble}}));
  const char* kLabels[] = {"red", "green", "blue", "cyan", "teal"};
  for (size_t i = 0; i < kDims; ++i) {
    EXPECT_TRUE(
        dim->AppendRow(
               {Value(static_cast<int64_t>(i)),
                rng.Bernoulli(0.3)
                    ? Value()
                    : Value(std::string(kLabels[rng.NextBounded(5)])),
                rng.Bernoulli(0.3) ? Value() : Value(rng.UniformDouble(0, 10))})
            .ok());
  }

  auto fact = std::make_shared<Table>(
      "fact", Schema({{"id", ValueType::kInt64},
                      {"k", ValueType::kInt64},
                      {"grp", ValueType::kString},
                      {"val", ValueType::kDouble},
                      {"cnt", ValueType::kInt64}}));
  const char* kGroups[] = {"a", "b", "c", "d", "e", "f", "g"};
  for (size_t i = 0; i < kSkewedRows; ++i) {
    EXPECT_TRUE(
        fact->AppendRow(
                {Value(static_cast<int64_t>(i)),
                 Value(static_cast<int64_t>(rng.Zipf(kDims, 1.2))),
                 rng.Bernoulli(0.3)
                     ? Value()
                     : Value(std::string(kGroups[rng.Zipf(7, 1.0)])),
                 rng.Bernoulli(0.3) ? Value()
                                    : Value(rng.UniformDouble(-50, 50)),
                 Value(rng.UniformInt(0, 5))})
            .ok());
  }

  auto detail = std::make_shared<Table>(
      "detail", Schema({{"fact_id", ValueType::kInt64},
                        {"note", ValueType::kString},
                        {"amt", ValueType::kDouble}}));
  for (size_t i = 0; i < kSkewedRows; ++i) {
    EXPECT_TRUE(detail
                    ->AppendRow({Value(static_cast<int64_t>(
                                     rng.Zipf(kSkewedRows, 1.1))),
                                 rng.Bernoulli(0.4)
                                     ? Value()
                                     : Value(std::string(
                                           kLabels[rng.NextBounded(5)])),
                                 rng.Bernoulli(0.3)
                                     ? Value()
                                     : Value(rng.UniformDouble(0, 100))})
                    .ok());
  }

  EXPECT_TRUE(db->AddTable(dim).ok());
  EXPECT_TRUE(db->AddTable(fact).ok());
  EXPECT_TRUE(db->AddTable(detail).ok());
  return FuzzDataset{
      "skewed",
      db,
      {{"fact", "k", "dim", "k"}, {"detail", "fact_id", "fact", "id"}}};
}

std::vector<FuzzDataset> MakeDatasets() {
  data::DatasetOptions options;
  options.scale = kDataScale;
  options.workload_size = 1;  // workload unused; the fuzzer generates its own
  options.seed = 42;
  data::DatasetBundle imdb = data::MakeImdbJob(options);
  data::DatasetBundle flights = data::MakeFlights(options);
  return {FuzzDataset{"imdb", imdb.db, imdb.fks},
          FuzzDataset{"flights", flights.db, flights.fks},
          MakeSkewed()};
}

/// Seeded query generator over one dataset's FK graph. Distinct from
/// workloadgen::QueryGenerator on purpose: this one is adversarial —
/// nested predicate trees, DISTINCT aggregates, HAVING over aggregate
/// aliases, all-NULL group keys, and deliberate cross products — rather
/// than paper-shaped exploration queries.
class QueryFuzzer {
 public:
  QueryFuzzer(const FuzzDataset& dataset, util::Rng* rng)
      : dataset_(dataset), rng_(rng) {
    for (const workloadgen::FkEdge& fk : dataset.fks) {
      AddTable(fk.child_table);
      AddTable(fk.parent_table);
    }
  }

  sql::SelectStatement Generate() {
    sql::SelectStatement stmt;
    from_positions_.clear();
    stmt.from.clear();
    std::vector<ExprPtr> conjuncts;
    PickTables(&stmt, &conjuncts);
    if (rng_->Bernoulli(0.85)) conjuncts.push_back(GenPredicate(stmt, 0));
    stmt.where = sql::AndAll(conjuncts);
    if (rng_->Bernoulli(0.5)) {
      GenAggregateSelect(&stmt);
    } else {
      GenPlainSelect(&stmt);
    }
    return stmt;
  }

 private:
  struct ColRef {
    size_t from_idx;  // position in stmt.from
    size_t col;
  };

  void AddTable(const std::string& name) {
    for (const auto& n : table_names_) {
      if (n == name) return;
    }
    auto table = dataset_.db->GetTable(name);
    ASSERT_TRUE(table.ok()) << name;
    table_names_.push_back(name);
    tables_.push_back(table.value());
  }

  const storage::Table& TableAt(const sql::SelectStatement& stmt,
                                size_t from_idx) const {
    for (size_t i = 0; i < table_names_.size(); ++i) {
      if (table_names_[i] == stmt.from[from_idx].table) return *tables_[i];
    }
    ADD_FAILURE() << "unknown table " << stmt.from[from_idx].table;
    return *tables_[0];
  }

  /// Grow a connected FK subgraph of 1-4 tables (or, rarely, a two-table
  /// cross product), emitting equi-join conjuncts as edges are added.
  void PickTables(sql::SelectStatement* stmt, std::vector<ExprPtr>* conjuncts) {
    const size_t nt = table_names_.size();
    if (nt >= 2 && rng_->Bernoulli(0.06)) {
      // Cross product over the two smallest tables (disconnected FROM).
      size_t a = 0, b = 1;
      for (size_t i = 0; i < nt; ++i) {
        if (tables_[i]->num_rows() < tables_[a]->num_rows()) a = i;
      }
      if (b == a) b = 0;
      for (size_t i = 0; i < nt; ++i) {
        if (i != a && tables_[i]->num_rows() < tables_[b]->num_rows()) b = i;
      }
      AddFrom(stmt, table_names_[a]);
      AddFrom(stmt, table_names_[b]);
      return;
    }
    const size_t want = 1 + rng_->NextBounded(4);
    AddFrom(stmt, table_names_[rng_->NextBounded(nt)]);
    while (stmt->from.size() < want) {
      // Edges with exactly one endpoint inside the chosen set.
      std::vector<const workloadgen::FkEdge*> frontier;
      for (const workloadgen::FkEdge& fk : dataset_.fks) {
        const bool child_in = from_positions_.count(fk.child_table) > 0;
        const bool parent_in = from_positions_.count(fk.parent_table) > 0;
        if (child_in != parent_in) frontier.push_back(&fk);
      }
      if (frontier.empty()) break;
      const workloadgen::FkEdge& fk =
          *frontier[rng_->NextBounded(frontier.size())];
      const bool child_new = from_positions_.count(fk.child_table) == 0;
      AddFrom(stmt, child_new ? fk.child_table : fk.parent_table);
      conjuncts->push_back(Expr::Binary(
          BinOp::kEq,
          Expr::ColumnRef(stmt->from[from_positions_[fk.child_table]].alias,
                          fk.child_col),
          Expr::ColumnRef(stmt->from[from_positions_[fk.parent_table]].alias,
                          fk.parent_col)));
    }
  }

  void AddFrom(sql::SelectStatement* stmt, const std::string& table) {
    from_positions_[table] = stmt->from.size();
    stmt->from.push_back(
        {table, "t" + std::to_string(stmt->from.size())});
  }

  ColRef RandomColumn(const sql::SelectStatement& stmt) {
    const size_t from_idx = rng_->NextBounded(stmt.from.size());
    return {from_idx,
            rng_->NextBounded(TableAt(stmt, from_idx).num_columns())};
  }

  ExprPtr ColumnExpr(const sql::SelectStatement& stmt, const ColRef& c) const {
    const storage::Table& t = TableAt(stmt, c.from_idx);
    return Expr::ColumnRef(stmt.from[c.from_idx].alias,
                           t.schema().fields()[c.col].name);
  }

  Value SampleValue(const sql::SelectStatement& stmt, const ColRef& c) {
    const storage::Table& t = TableAt(stmt, c.from_idx);
    if (t.num_rows() == 0) return Value();
    return t.column(c.col).ValueAt(rng_->NextBounded(t.num_rows()));
  }

  Value SampleNonNull(const sql::SelectStatement& stmt, const ColRef& c) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      Value v = SampleValue(stmt, c);
      if (!v.is_null()) return v;
    }
    return Value();
  }

  /// Nested predicate tree: AND/OR interior nodes (sometimes NOT-wrapped),
  /// leaves drawn from comparison / IN / BETWEEN / LIKE / IS NULL with
  /// literals sampled from the actual column data.
  ExprPtr GenPredicate(const sql::SelectStatement& stmt, int depth) {
    if (depth < 3 && rng_->Bernoulli(0.4)) {
      ExprPtr node = Expr::Binary(rng_->Bernoulli(0.5) ? BinOp::kAnd
                                                       : BinOp::kOr,
                                  GenPredicate(stmt, depth + 1),
                                  GenPredicate(stmt, depth + 1));
      if (rng_->Bernoulli(0.15)) node = Expr::Not(std::move(node));
      return node;
    }
    const ColRef c = RandomColumn(stmt);
    ExprPtr col = ColumnExpr(stmt, c);
    const bool negated = rng_->Bernoulli(0.25);
    switch (rng_->NextBounded(6)) {
      case 0:
        return Expr::IsNull(std::move(col), negated);
      case 1: {
        std::vector<Value> in_list;
        const size_t n = 2 + rng_->NextBounded(3);
        for (size_t i = 0; i < n; ++i) {
          Value v = SampleNonNull(stmt, c);
          if (!v.is_null()) in_list.push_back(std::move(v));
        }
        if (in_list.empty()) return Expr::IsNull(std::move(col));
        return Expr::In(std::move(col), std::move(in_list), negated);
      }
      case 2: {
        Value lo = SampleNonNull(stmt, c);
        Value hi = SampleNonNull(stmt, c);
        if (lo.is_null() || hi.is_null()) {
          return Expr::IsNull(std::move(col));
        }
        if (lo.Compare(hi) > 0) std::swap(lo, hi);
        return Expr::Between(std::move(col), std::move(lo), std::move(hi),
                             negated);
      }
      case 3: {
        Value v = SampleNonNull(stmt, c);
        if (v.type() == ValueType::kString && !v.AsString().empty()) {
          const std::string& s = v.AsString();
          const std::string pattern =
              "%" + s.substr(0, std::min<size_t>(3, s.size())) + "%";
          return Expr::Like(std::move(col), pattern, negated);
        }
        [[fallthrough]];
      }
      default: {
        Value v = SampleNonNull(stmt, c);
        if (v.is_null()) return Expr::IsNull(std::move(col));
        static constexpr BinOp kCmps[] = {BinOp::kEq, BinOp::kNe, BinOp::kLt,
                                          BinOp::kLe, BinOp::kGt, BinOp::kGe};
        return Expr::Binary(kCmps[rng_->NextBounded(6)], std::move(col),
                            Expr::Literal(std::move(v)));
      }
    }
  }

  void GenPlainSelect(sql::SelectStatement* stmt) {
    if (rng_->Bernoulli(0.08)) {
      sql::SelectItem star;
      star.star = true;
      stmt->items.push_back(std::move(star));
    } else {
      const size_t n = 1 + rng_->NextBounded(4);
      for (size_t i = 0; i < n; ++i) {
        sql::SelectItem item;
        item.expr = ColumnExpr(*stmt, RandomColumn(*stmt));
        stmt->items.push_back(std::move(item));
      }
    }
    stmt->distinct = rng_->Bernoulli(0.2);
    if (rng_->Bernoulli(0.4)) {
      const size_t n = 1 + rng_->NextBounded(2);
      for (size_t i = 0; i < n; ++i) {
        stmt->order_by.push_back({ColumnExpr(*stmt, RandomColumn(*stmt)),
                                  rng_->Bernoulli(0.5)});
      }
    }
    if (rng_->Bernoulli(0.5)) stmt->limit = rng_->UniformInt(1, 60);
  }

  void GenAggregateSelect(sql::SelectStatement* stmt) {
    const size_t groups = rng_->NextBounded(3);  // 0 = global aggregate
    for (size_t g = 0; g < groups; ++g) {
      const ColRef c = RandomColumn(*stmt);
      stmt->group_by.push_back(ColumnExpr(*stmt, c));
      sql::SelectItem item;
      item.expr = ColumnExpr(*stmt, c);
      item.alias = "grp" + std::to_string(g);
      stmt->items.push_back(std::move(item));
    }
    const size_t aggs = 1 + rng_->NextBounded(3);
    for (size_t a = 0; a < aggs; ++a) {
      sql::SelectItem item;
      item.alias = "agg" + std::to_string(a);
      static constexpr sql::AggFunc kFuncs[] = {
          sql::AggFunc::kCount, sql::AggFunc::kSum, sql::AggFunc::kAvg,
          sql::AggFunc::kMin, sql::AggFunc::kMax};
      item.agg = kFuncs[rng_->NextBounded(5)];
      if (item.agg == sql::AggFunc::kCount && rng_->Bernoulli(0.4)) {
        item.star = true;
      } else {
        item.expr = ColumnExpr(*stmt, RandomColumn(*stmt));
        item.distinct = rng_->Bernoulli(0.25);
      }
      stmt->items.push_back(std::move(item));
    }
    if (rng_->Bernoulli(0.35)) {
      static constexpr BinOp kCmps[] = {BinOp::kGe, BinOp::kGt, BinOp::kLe,
                                        BinOp::kLt};
      stmt->having = Expr::Binary(
          kCmps[rng_->NextBounded(4)],
          Expr::ColumnRef("", "agg" + std::to_string(rng_->NextBounded(aggs))),
          Expr::Literal(Value(rng_->UniformInt(0, 3))));
    }
    if (rng_->Bernoulli(0.5)) {
      // ORDER BY over output columns (aggregate aliases / group aliases).
      const size_t n = 1 + rng_->NextBounded(2);
      for (size_t i = 0; i < n; ++i) {
        const size_t pick = rng_->NextBounded(stmt->items.size());
        stmt->order_by.push_back({Expr::ColumnRef("", stmt->items[pick].alias),
                                  rng_->Bernoulli(0.5)});
      }
    }
    if (rng_->Bernoulli(0.4)) stmt->limit = rng_->UniformInt(1, 40);
  }

  const FuzzDataset& dataset_;
  util::Rng* rng_;
  std::vector<std::string> table_names_;
  std::vector<std::shared_ptr<storage::Table>> tables_;
  std::map<std::string, size_t> from_positions_;
};

/// Run one query on the reference engine (planner off, sequential) and on
/// every variant engine and require identical outcomes: same ok-ness and
/// Status code, and for ok queries byte-identical ResultSets (column
/// names, row count, and every serialized row, order included).
void RunDifferential(const FuzzDataset& dataset, const QueryEngine& seq,
                     const std::vector<QueryEngine>& parallel,
                     const sql::SelectStatement& stmt, size_t index,
                     uint64_t seed, size_t* executed_ok) {
  const std::string label = dataset.name + " query " + std::to_string(index) +
                            " (seed " + std::to_string(seed) +
                            "): " + stmt.ToSql();
  auto bound = sql::Bind(stmt, *dataset.db);
  ASSERT_TRUE(bound.ok()) << label << ": " << bound.status().ToString();
  storage::DatabaseView view(dataset.db.get());
  auto expected = seq.Execute(bound.value(), view);
  if (expected.ok()) ++*executed_ok;
  for (const QueryEngine& par : parallel) {
    const std::string engine_label =
        label + " @" + std::to_string(par.options().num_threads) +
        " threads planner-" +
        (par.options().enable_planner
             ? (par.options().planner_stats != nullptr ? "on" : "on-no-stats")
             : "off") +
        (par.options().index_catalog != nullptr ? " index-on" : " index-off");
    auto actual = par.Execute(bound.value(), view);
    ASSERT_EQ(expected.ok(), actual.ok())
        << engine_label << ": sequential=" << expected.status().ToString()
        << " parallel=" << actual.status().ToString();
    if (!expected.ok()) {
      ASSERT_EQ(expected.status().code(), actual.status().code())
          << engine_label;
      continue;
    }
    const ResultSet& want = expected.value();
    const ResultSet& got = actual.value();
    ASSERT_EQ(want.column_names(), got.column_names()) << engine_label;
    ASSERT_EQ(want.num_rows(), got.num_rows()) << engine_label;
    for (size_t r = 0; r < want.num_rows(); ++r) {
      ASSERT_EQ(want.RowKey(r), got.RowKey(r))
          << engine_label << " row " << r << " differs";
    }
  }
}

TEST(DifferentialExecTest, SeqVsParallelOnGeneratedQueries) {
  const uint64_t seed = SeedFromEnv();
  // Reference: planner OFF, sequential — the unplanned runtime-greedy
  // pipeline. Every variant (planner off at higher thread counts, planner
  // on with real column statistics at every thread count) must reproduce
  // its bytes exactly.
  const QueryEngine seq = MakeEngine(1, /*planner=*/false);
  for (const FuzzDataset& dataset : MakeDatasets()) {
    // Statistics and index catalogs are per-database, so the planner-on
    // and index-on engines are built inside the dataset loop. The catalog
    // covers the full database (subset == nullptr) — exactly the scope of
    // the view every engine executes against — and indexes every column,
    // so the planner's access-path rule gets a real choice on every
    // generated conjunct.
    auto stats = std::make_shared<const plan::StatsCatalog>(
        plan::StatsCatalog::Collect(*dataset.db));
    const storage::DatabaseView full_view(dataset.db.get());
    auto indexes = std::make_shared<const storage::IndexCatalog>(
        storage::IndexCatalog::Build(full_view,
                                     storage::AllIndexColumns(*dataset.db),
                                     /*generation=*/0));
    std::vector<QueryEngine> variants;
    for (const size_t threads : {2, 4, 8}) {
      variants.push_back(MakeEngine(threads, /*planner=*/false));
    }
    for (const size_t threads : {1, 2, 4, 8}) {
      variants.push_back(MakeEngine(threads, /*planner=*/true, stats));
      variants.push_back(MakeEngine(threads, /*planner=*/true, stats,
                                    indexes));
    }
    // Planner with no statistics (fixed default selectivities) is its own
    // estimation code path; one sequential engine covers it, with and
    // without indexes (default selectivities drive the access-path rule
    // differently than real statistics do).
    variants.push_back(MakeEngine(1, /*planner=*/true));
    variants.push_back(MakeEngine(1, /*planner=*/true, nullptr, indexes));
    // Planner off + catalog attached: access paths are a planner rule, so
    // the catalog must be inert — full scans, identical bytes.
    variants.push_back(MakeEngine(2, /*planner=*/false, nullptr, indexes));
    util::Rng rng(seed ^ util::Fnv1a(dataset.name));
    QueryFuzzer fuzzer(dataset, &rng);
    size_t executed_ok = 0;
    for (size_t i = 0; i < kQueriesPerDataset; ++i) {
      const sql::SelectStatement stmt = fuzzer.Generate();
      RunDifferential(dataset, seq, variants, stmt, i, seed, &executed_ok);
      if (::testing::Test::HasFatalFailure()) return;
    }
    // The generator must produce mostly executable queries, or the
    // differential coverage is an illusion.
    EXPECT_GE(executed_ok, kQueriesPerDataset / 2)
        << dataset.name << ": too few queries executed cleanly";
  }
}

// ---- Deadline / cancellation / fault injection mid-operator. ----

std::shared_ptr<storage::Database> SkewedDb() { return MakeSkewed().db; }

TEST(DifferentialExecTest, FaultMidBuildReturnsResourceExhausted) {
  // exec.join.partition guards the per-morsel partition buffers, which
  // only exist on the parallel build path (the sequential build keeps the
  // existing exec.join.alloc point).
  const auto db = SkewedDb();
  storage::DatabaseView view(db.get());
  const std::string sql =
      "SELECT d.label, f.val FROM fact f, dim d WHERE f.k = d.k";
  auto& faults = util::FaultInjector::Global();
  for (const size_t threads : {size_t{2}, size_t{4}}) {
    const QueryEngine engine = MakeEngine(threads);
    faults.Reset();
    // skip=2: the first chunks survive, so the fault lands mid-build.
    faults.Arm("exec.join.partition", /*count=*/1, /*skip=*/2);
    auto result = engine.ExecuteSql(sql, view);
    faults.Reset();
    ASSERT_FALSE(result.ok()) << threads << " threads";
    EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted)
        << result.status().ToString();
    EXPECT_NE(result.status().message().find("partition"), std::string::npos)
        << result.status().ToString();
  }
}

TEST(DifferentialExecTest, FaultMidAggregationFailsBothEnginesAlike) {
  const auto db = SkewedDb();
  storage::DatabaseView view(db.get());
  const std::string sql =
      "SELECT f.grp, COUNT(*), SUM(f.val) FROM fact f GROUP BY f.grp";
  auto& faults = util::FaultInjector::Global();
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    const QueryEngine engine = MakeEngine(threads);
    faults.Reset();
    faults.Arm("exec.agg.partial", /*count=*/1, /*skip=*/2);
    auto result = engine.ExecuteSql(sql, view);
    faults.Reset();
    ASSERT_FALSE(result.ok()) << threads << " threads";
    EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted)
        << result.status().ToString();
    EXPECT_NE(result.status().message().find("aggregation"), std::string::npos)
        << result.status().ToString();
  }
}

TEST(DifferentialExecTest, DeadlineMidBuildReturnsDeadlineExceeded) {
  const auto db = SkewedDb();
  storage::DatabaseView view(db.get());
  const QueryEngine par = MakeEngine(4);
  const util::ExecContext context = util::ExecContext::WithDeadline(0.0);
  auto result = par.ExecuteSql(
      "SELECT d.label, f.val FROM fact f, dim d WHERE f.k = d.k", view,
      context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded)
      << result.status().ToString();
}

// ---- BETWEEN <-> paired-inequality equivalence. ----
//
// The canonical fingerprint collapses `x BETWEEN lo AND hi` with
// `lo <= x AND x <= hi` (and `x NOT BETWEEN lo AND hi` with
// `x < lo OR x > hi`), so the serving layer's answer cache may hand one
// spelling's cached bytes to the other. This test is the license for
// that: both spellings must execute to byte-identical ResultSets, with
// the planner on and off, including over NULL-heavy columns (comparisons
// with NULL are false in WHERE, so both spellings reject NULLs alike).
TEST(DifferentialExecTest, BetweenMatchesPairedInequalities) {
  const auto db = SkewedDb();
  storage::DatabaseView view(db.get());
  const struct {
    const char* between;
    const char* spelled;
  } kPairs[] = {
      {"SELECT f.id, f.val FROM fact f WHERE f.cnt BETWEEN 3 AND 17",
       "SELECT f.id, f.val FROM fact f WHERE 3 <= f.cnt AND f.cnt <= 17"},
      {"SELECT f.id FROM fact f WHERE f.val BETWEEN 1.5 AND 8.25",
       "SELECT f.id FROM fact f WHERE 1.5 <= f.val AND f.val <= 8.25"},
      {"SELECT f.id FROM fact f WHERE f.cnt NOT BETWEEN 5 AND 40",
       "SELECT f.id FROM fact f WHERE f.cnt < 5 OR f.cnt > 40"},
      {"SELECT d.label, COUNT(*) FROM fact f, dim d "
       "WHERE f.k = d.k AND d.k BETWEEN 2 AND 9 GROUP BY d.label",
       "SELECT d.label, COUNT(*) FROM fact f, dim d "
       "WHERE f.k = d.k AND 2 <= d.k AND d.k <= 9 GROUP BY d.label"},
  };
  for (const bool planner : {false, true}) {
    const QueryEngine engine = MakeEngine(1, planner);
    for (const auto& pair : kPairs) {
      const std::string label = std::string(pair.between) + " planner=" +
                                (planner ? "on" : "off");
      auto a = engine.ExecuteSql(pair.between, view);
      auto b = engine.ExecuteSql(pair.spelled, view);
      ASSERT_TRUE(a.ok()) << label << ": " << a.status().ToString();
      ASSERT_TRUE(b.ok()) << label << ": " << b.status().ToString();
      const ResultSet& want = a.value();
      const ResultSet& got = b.value();
      ASSERT_EQ(want.num_rows(), got.num_rows()) << label;
      for (size_t r = 0; r < want.num_rows(); ++r) {
        ASSERT_EQ(want.RowKey(r), got.RowKey(r)) << label << " row " << r;
      }
    }
  }
}

TEST(DifferentialExecTest, CancelMidAggregationReturnsCancelled) {
  const auto db = SkewedDb();
  storage::DatabaseView view(db.get());
  const QueryEngine par = MakeEngine(4);
  util::ExecContext context;
  context.RequestCancel();
  auto result = par.ExecuteSql(
      "SELECT f.grp, AVG(f.val) FROM fact f GROUP BY f.grp", view, context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled)
      << result.status().ToString();
}

}  // namespace
}  // namespace exec
}  // namespace asqp
