#include <gtest/gtest.h>

#include "embed/embedder.h"
#include "embed/vector_ops.h"
#include "sql/parser.h"
#include "tests/testing.h"

namespace asqp {
namespace embed {
namespace {

TEST(VectorOpsTest, DotNormCosine) {
  Vector a = {1.0f, 0.0f};
  Vector b = {0.0f, 2.0f};
  EXPECT_FLOAT_EQ(Dot(a, b), 0.0f);
  EXPECT_FLOAT_EQ(Norm(b), 2.0f);
  EXPECT_FLOAT_EQ(Cosine(a, b), 0.0f);
  EXPECT_FLOAT_EQ(Cosine(a, a), 1.0f);
  Vector zero = {0.0f, 0.0f};
  EXPECT_FLOAT_EQ(Cosine(a, zero), 0.0f);
}

TEST(VectorOpsTest, L2AndNormalize) {
  Vector a = {3.0f, 4.0f};
  Vector b = {0.0f, 0.0f};
  EXPECT_FLOAT_EQ(L2Distance(a, b), 5.0f);
  NormalizeInPlace(&a);
  EXPECT_NEAR(Norm(a), 1.0f, 1e-6);
  NormalizeInPlace(&b);  // zero vector: no-op, no NaN
  EXPECT_FLOAT_EQ(b[0], 0.0f);
}

TEST(FeatureHasherTest, DeterministicAndSpread) {
  FeatureHasher h(32);
  Vector a(32, 0.0f), b(32, 0.0f);
  h.Accumulate("token_x", 1.0f, &a);
  h.Accumulate("token_x", 1.0f, &b);
  EXPECT_EQ(a, b);
  Vector c(32, 0.0f);
  h.Accumulate("token_y", 1.0f, &c);
  EXPECT_NE(a, c);
}

sql::SelectStatement MustParse(const std::string& s) {
  auto r = sql::Parse(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(QueryEmbedderTest, IdenticalQueriesIdenticalVectors) {
  QueryEmbedder e(64);
  const auto q = MustParse("SELECT a FROM t WHERE x > 5");
  EXPECT_EQ(e.Embed(q), e.Embed(q));
}

TEST(QueryEmbedderTest, SimilarQueriesCloserThanDissimilar) {
  QueryEmbedder e(64);
  const auto base = MustParse("SELECT title FROM movies WHERE year > 2000");
  const auto near = MustParse("SELECT title FROM movies WHERE year > 2003");
  const auto far = MustParse("SELECT actor FROM roles WHERE salary < 10");
  const float sim_near = Cosine(e.Embed(base), e.Embed(near));
  const float sim_far = Cosine(e.Embed(base), e.Embed(far));
  EXPECT_GT(sim_near, sim_far);
  EXPECT_GT(sim_near, 0.8f);
}

TEST(QueryEmbedderTest, UnitNorm) {
  QueryEmbedder e(64);
  const auto q = MustParse(
      "SELECT a, COUNT(*) FROM t WHERE b IN (1,2,3) AND c BETWEEN 2 AND 9 "
      "GROUP BY a");
  EXPECT_NEAR(Norm(e.Embed(q)), 1.0f, 1e-5);
}

TEST(QueryEmbedderTest, OperatorDirectionMatters) {
  QueryEmbedder e(64);
  const auto gt = MustParse("SELECT a FROM t WHERE x > 5");
  const auto lt = MustParse("SELECT a FROM t WHERE x < 5");
  EXPECT_LT(Cosine(e.Embed(gt), e.Embed(lt)), 0.999f);
}

TEST(TupleEmbedderTest, RowSimilarityTracksValueOverlap) {
  auto db = testing::MakeTinyMovieDb();
  auto movies = db->GetTable("movies").value();
  TupleEmbedder e(64);
  // Rows 2 and 3 share year=2010; rows 2 and 7 share nothing notable.
  const Vector v2 = e.EmbedRow(*movies, 2);
  const Vector v3 = e.EmbedRow(*movies, 3);
  const Vector v7 = e.EmbedRow(*movies, 7);
  EXPECT_GT(Cosine(v2, v3), Cosine(v2, v7));
  EXPECT_NEAR(Norm(v2), 1.0f, 1e-5);
}

TEST(TupleEmbedderTest, JoinedTupleBlendsTables) {
  auto db = testing::MakeTinyMovieDb();
  auto movies = db->GetTable("movies").value();
  auto roles = db->GetTable("roles").value();
  TupleEmbedder e(64);
  const Vector joined =
      e.EmbedJoined({movies.get(), roles.get()}, {0, 0});
  const Vector movie_only = e.EmbedRow(*movies, 0);
  EXPECT_NEAR(Norm(joined), 1.0f, 1e-5);
  EXPECT_GT(Cosine(joined, movie_only), 0.3f);
  EXPECT_LT(Cosine(joined, movie_only), 0.999f);
}

}  // namespace
}  // namespace embed
}  // namespace asqp
