#include <gtest/gtest.h>

#include "core/estimator.h"
#include "sql/parser.h"
#include "tests/testing.h"

namespace asqp {
namespace core {
namespace {

sql::SelectStatement Q(const std::string& s) {
  auto r = sql::Parse(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest() : embedder_(64) {}

  AnswerabilityEstimator Make(const std::vector<std::string>& reps,
                              const std::vector<double>& coverage) {
    std::vector<embed::Vector> vecs;
    for (const std::string& s : reps) vecs.push_back(embedder_.Embed(Q(s)));
    return AnswerabilityEstimator(embedder_, vecs, coverage);
  }

  embed::QueryEmbedder embedder_;
};

TEST_F(EstimatorTest, EstimateBounded) {
  auto est = Make({"SELECT a FROM t WHERE x > 5"}, {0.9});
  for (const char* q :
       {"SELECT a FROM t WHERE x > 5", "SELECT z FROM other WHERE y = 'v'",
        "SELECT a FROM t"}) {
    const double e = est.Estimate(Q(q));
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST_F(EstimatorTest, ExactRepresentativeGetsItsCoverage) {
  auto est = Make({"SELECT a FROM t WHERE x > 5"}, {0.8});
  const double e = est.Estimate(Q("SELECT a FROM t WHERE x > 5"));
  EXPECT_NEAR(e, 0.8, 0.05);  // gate ~1, weighted coverage ~0.8
}

TEST_F(EstimatorTest, UnrelatedQueryGatedToZero) {
  auto est = Make({"SELECT a FROM t WHERE x > 5"}, {1.0});
  const double e = est.Estimate(
      Q("SELECT name FROM completely_other WHERE label = 'zzz'"));
  EXPECT_LT(e, 0.1);
}

TEST_F(EstimatorTest, CoverageZeroMeansUnanswerable) {
  // Even an identical query is unanswerable when training coverage was 0.
  auto est = Make({"SELECT a FROM t WHERE x > 5"}, {0.0});
  EXPECT_LT(est.Estimate(Q("SELECT a FROM t WHERE x > 5")), 0.1);
}

TEST_F(EstimatorTest, NearestRepresentativeDominates) {
  // A query matching the high-coverage rep estimates high; one matching
  // the low-coverage rep estimates low.
  auto est = Make({"SELECT a FROM t WHERE color = 'red'",
                   "SELECT b FROM s WHERE size > 10"},
                  {0.9, 0.1});
  const double near_good = est.Estimate(Q("SELECT a FROM t WHERE color = 'red'"));
  const double near_bad = est.Estimate(Q("SELECT b FROM s WHERE size > 12"));
  EXPECT_GT(near_good, near_bad);
  EXPECT_GT(near_good, 0.6);
  EXPECT_LT(near_bad, 0.5);
}

TEST_F(EstimatorTest, SetCoverageUpdatesEstimates) {
  auto est = Make({"SELECT a FROM t WHERE x > 5"}, {0.0});
  const auto query = Q("SELECT a FROM t WHERE x > 5");
  const double before = est.Estimate(query);
  est.SetCoverage(0, 1.0);
  const double after = est.Estimate(query);
  EXPECT_GT(after, before + 0.5);
  // Out-of-range index is ignored.
  est.SetCoverage(99, 0.5);
}

TEST_F(EstimatorTest, DeviationIsComplementOfEstimate) {
  auto est = Make({"SELECT a FROM t WHERE x > 5"}, {0.7});
  const auto query = Q("SELECT a FROM t WHERE x > 6");
  EXPECT_NEAR(est.DeviationConfidence(query), 1.0 - est.Estimate(query),
              1e-9);
}

TEST_F(EstimatorTest, SimilarityOrdersByPredicateOverlap) {
  auto est = Make({"SELECT a FROM t WHERE area = 'databases'"}, {1.0});
  const double same = est.Similarity(Q("SELECT a FROM t WHERE area = 'databases'"));
  const double diff_value = est.Similarity(Q("SELECT a FROM t WHERE area = 'ml'"));
  const double diff_table = est.Similarity(Q("SELECT z FROM other"));
  EXPECT_GT(same, diff_value);
  EXPECT_GT(diff_value, diff_table);
  EXPECT_NEAR(same, 1.0, 1e-5);
}

TEST_F(EstimatorTest, EmptyEstimatorIsSafe) {
  AnswerabilityEstimator est(embedder_, {}, {});
  EXPECT_DOUBLE_EQ(est.Estimate(Q("SELECT a FROM t")), 0.0);
  EXPECT_DOUBLE_EQ(est.Similarity(Q("SELECT a FROM t")), 0.0);
}

}  // namespace
}  // namespace core
}  // namespace asqp
