// Executor edge cases: degenerate inputs the generated workloads rarely
// produce but real exploration sessions will.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "sql/binder.h"
#include "tests/testing.h"

namespace asqp {
namespace exec {
namespace {

using storage::Value;
using storage::ValueType;

class ExecEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_shared<storage::Database>();

    // empty(x INT): zero rows.
    auto empty = std::make_shared<storage::Table>(
        "empty", storage::Schema({{"x", ValueType::kInt64}}));
    ASSERT_OK(db_->AddTable(empty));

    // k(id INT, v STRING): join keys including NULLs and duplicates.
    auto k = std::make_shared<storage::Table>(
        "k", storage::Schema({{"id", ValueType::kInt64},
                              {"v", ValueType::kString}}));
    ASSERT_OK(k->AppendRow({Value(int64_t{1}), Value(std::string("a"))}));
    ASSERT_OK(k->AppendRow({Value(int64_t{1}), Value(std::string("b"))}));
    ASSERT_OK(k->AppendRow({Value(), Value(std::string("n1"))}));
    ASSERT_OK(k->AppendRow({Value(int64_t{2}), Value(std::string("c"))}));
    ASSERT_OK(db_->AddTable(k));

    // m(id INT, w DOUBLE): the other join side, also with a NULL key.
    auto m = std::make_shared<storage::Table>(
        "m", storage::Schema({{"id", ValueType::kInt64},
                              {"w", ValueType::kDouble}}));
    ASSERT_OK(m->AppendRow({Value(int64_t{1}), Value(10.0)}));
    ASSERT_OK(m->AppendRow({Value(), Value(20.0)}));
    ASSERT_OK(m->AppendRow({Value(int64_t{3}), Value(30.0)}));
    ASSERT_OK(db_->AddTable(m));

    view_ = std::make_unique<storage::DatabaseView>(db_.get());
  }

  ResultSet Run(const std::string& sql) {
    auto rs = engine_.ExecuteSql(sql, *view_);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString() << " for " << sql;
    return rs.ok() ? std::move(rs).value() : ResultSet();
  }

  std::shared_ptr<storage::Database> db_;
  std::unique_ptr<storage::DatabaseView> view_;
  QueryEngine engine_;
};

TEST_F(ExecEdgeTest, ScanOfEmptyTable) {
  EXPECT_EQ(Run("SELECT * FROM empty").num_rows(), 0u);
  EXPECT_EQ(Run("SELECT * FROM empty WHERE x > 0").num_rows(), 0u);
}

TEST_F(ExecEdgeTest, AggregateOverEmptyTable) {
  auto rs = Run("SELECT COUNT(*), SUM(x), MIN(x) FROM empty");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.row(0)[0].AsInt64(), 0);
  EXPECT_TRUE(rs.row(0)[1].is_null());
  EXPECT_TRUE(rs.row(0)[2].is_null());
}

TEST_F(ExecEdgeTest, JoinWithEmptySideYieldsNothing) {
  EXPECT_EQ(Run("SELECT * FROM k, empty WHERE k.id = empty.x").num_rows(), 0u);
}

TEST_F(ExecEdgeTest, NullKeysNeverJoin) {
  // id=1 matches twice (duplicate build rows); NULLs on either side drop.
  auto rs = Run("SELECT k.v, m.w FROM k, m WHERE k.id = m.id");
  EXPECT_EQ(rs.num_rows(), 2u);  // (a,10) and (b,10)
  for (size_t r = 0; r < rs.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(rs.row(r)[1].AsDouble(), 10.0);
  }
}

TEST_F(ExecEdgeTest, CrossProductWhenNoJoinPredicate) {
  auto rs = Run("SELECT k.v, m.w FROM k, m");
  EXPECT_EQ(rs.num_rows(), 12u);  // 4 x 3
}

TEST_F(ExecEdgeTest, SelfJoinAggregates) {
  // Pairs of k rows sharing the same id, counted per id.
  auto rs = Run(
      "SELECT a.id, COUNT(*) FROM k a, k b "
      "WHERE a.id = b.id AND a.v <> b.v GROUP BY a.id");
  ASSERT_EQ(rs.num_rows(), 1u);  // only id=1 has two distinct-v rows
  EXPECT_EQ(rs.row(0)[0].AsInt64(), 1);
  EXPECT_EQ(rs.row(0)[1].AsInt64(), 2);  // (a,b) and (b,a)
}

TEST_F(ExecEdgeTest, LargeInListAndNegation) {
  std::string in_list = "1";
  for (int i = 100; i < 400; ++i) in_list += ", " + std::to_string(i);
  EXPECT_EQ(Run("SELECT * FROM k WHERE id IN (" + in_list + ")").num_rows(),
            2u);
  EXPECT_EQ(
      Run("SELECT * FROM k WHERE id NOT IN (" + in_list + ")").num_rows(),
      1u);  // id=2; the NULL id row never matches either form
}

TEST_F(ExecEdgeTest, GroupByNullableColumn) {
  auto rs = Run("SELECT id, COUNT(*) FROM k GROUP BY id");
  EXPECT_EQ(rs.num_rows(), 3u);  // groups: 1, 2, NULL
  int64_t total = 0;
  for (size_t r = 0; r < rs.num_rows(); ++r) total += rs.row(r)[1].AsInt64();
  EXPECT_EQ(total, 4);
}

TEST_F(ExecEdgeTest, DistinctOverDuplicates) {
  EXPECT_EQ(Run("SELECT DISTINCT id FROM k").num_rows(), 3u);
  EXPECT_EQ(Run("SELECT DISTINCT id, v FROM k").num_rows(), 4u);
}

TEST_F(ExecEdgeTest, ArithmeticNullPropagation) {
  // x + NULL is NULL; WHERE drops it, projection carries it.
  auto rs = Run("SELECT id + 1 FROM k ORDER BY id");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_TRUE(rs.row(0)[0].is_null());  // NULL sorts first
  auto filtered = Run("SELECT * FROM k WHERE id + 1 >= 2");
  EXPECT_EQ(filtered.num_rows(), 3u);
}

TEST_F(ExecEdgeTest, DivisionByZeroIsNull) {
  auto rs = Run("SELECT id / 0 FROM k WHERE id = 1");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_TRUE(rs.row(0)[0].is_null());
}

TEST_F(ExecEdgeTest, OrderByMultipleKeysMixedDirections) {
  auto rs = Run("SELECT id, v FROM k ORDER BY id DESC, v ASC");
  ASSERT_EQ(rs.num_rows(), 4u);
  // NULL id sorts last under DESC; id=2 first, then id=1 with v 'a' < 'b'.
  EXPECT_EQ(rs.row(0)[0].AsInt64(), 2);
  EXPECT_EQ(rs.row(1)[1].AsString(), "a");
  EXPECT_EQ(rs.row(2)[1].AsString(), "b");
  EXPECT_TRUE(rs.row(3)[0].is_null());
}

TEST_F(ExecEdgeTest, SubsetViewOverEmptySubset) {
  storage::ApproximationSet empty_subset;
  empty_subset.Seal();
  storage::DatabaseView view(db_.get(), &empty_subset);
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind("SELECT * FROM k", *db_));
  ASSERT_OK_AND_ASSIGN(auto rs, engine_.Execute(bound, view));
  EXPECT_EQ(rs.num_rows(), 0u);
}

TEST_F(ExecEdgeTest, LimitLargerThanResult) {
  EXPECT_EQ(Run("SELECT * FROM k LIMIT 100").num_rows(), 4u);
}

TEST_F(ExecEdgeTest, ConstantPredicates) {
  EXPECT_EQ(Run("SELECT * FROM k WHERE 1 = 1").num_rows(), 4u);
  EXPECT_EQ(Run("SELECT * FROM k WHERE 1 = 2").num_rows(), 0u);
}

}  // namespace
}  // namespace exec
}  // namespace asqp
