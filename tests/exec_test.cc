#include <gtest/gtest.h>

#include <set>

#include "exec/evaluator.h"
#include "exec/executor.h"
#include "sql/binder.h"
#include "tests/testing.h"

namespace asqp {
namespace exec {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeTinyMovieDb();
    view_ = std::make_unique<storage::DatabaseView>(db_.get());
  }

  ResultSet Run(const std::string& sql) {
    auto result = engine_.ExecuteSql(sql, *view_);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << " for " << sql;
    return result.ok() ? std::move(result).value() : ResultSet();
  }

  std::shared_ptr<storage::Database> db_;
  std::unique_ptr<storage::DatabaseView> view_;
  QueryEngine engine_;
};

TEST_F(ExecTest, FullScan) {
  auto rs = Run("SELECT * FROM movies");
  EXPECT_EQ(rs.num_rows(), 8u);
  EXPECT_EQ(rs.num_columns(), 4u);
  EXPECT_EQ(rs.column_names()[1], "movies.title");
}

TEST_F(ExecTest, FilterComparisons) {
  EXPECT_EQ(Run("SELECT * FROM movies WHERE year = 2010").num_rows(), 2u);
  EXPECT_EQ(Run("SELECT * FROM movies WHERE year <> 2010").num_rows(), 6u);
  EXPECT_EQ(Run("SELECT * FROM movies WHERE year > 2015").num_rows(), 3u);
  EXPECT_EQ(Run("SELECT * FROM movies WHERE year >= 2015").num_rows(), 4u);
  EXPECT_EQ(Run("SELECT * FROM movies WHERE rating < 6").num_rows(), 2u);
  EXPECT_EQ(Run("SELECT * FROM movies WHERE rating <= 6.1").num_rows(), 3u);
}

TEST_F(ExecTest, BooleanCombinators) {
  EXPECT_EQ(
      Run("SELECT * FROM movies WHERE year = 2010 AND rating > 6").num_rows(),
      1u);
  EXPECT_EQ(
      Run("SELECT * FROM movies WHERE year = 1999 OR year = 2021").num_rows(),
      2u);
  EXPECT_EQ(Run("SELECT * FROM movies WHERE NOT year = 2010").num_rows(), 6u);
}

TEST_F(ExecTest, InBetweenLike) {
  EXPECT_EQ(Run("SELECT * FROM movies WHERE year IN (1999, 2021)").num_rows(),
            2u);
  EXPECT_EQ(
      Run("SELECT * FROM movies WHERE year NOT IN (1999, 2021)").num_rows(),
      6u);
  EXPECT_EQ(
      Run("SELECT * FROM movies WHERE rating BETWEEN 6 AND 8").num_rows(),
      4u);
  EXPECT_EQ(Run("SELECT * FROM movies WHERE title LIKE 'e%'").num_rows(), 2u);
  EXPECT_EQ(Run("SELECT * FROM movies WHERE title LIKE '%eta'").num_rows(),
            4u);  // beta, zeta, eta, theta
  EXPECT_EQ(Run("SELECT * FROM movies WHERE title LIKE '_eta'").num_rows(),
            2u);  // beta, zeta
}

TEST_F(ExecTest, Projection) {
  auto rs = Run("SELECT title, year FROM movies WHERE id = 3");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.row(0)[0].AsString(), "gamma");
  EXPECT_EQ(rs.row(0)[1].AsInt64(), 2010);
}

TEST_F(ExecTest, ArithmeticInProjectionAndFilter) {
  auto rs = Run("SELECT rating * 2 FROM movies WHERE id = 1");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(rs.row(0)[0].AsDouble(), 15.0);
  EXPECT_EQ(Run("SELECT * FROM movies WHERE year - 2000 > 15").num_rows(), 3u);
}

TEST_F(ExecTest, HashJoin) {
  auto rs = Run(
      "SELECT m.title, r.actor FROM movies m, roles r "
      "WHERE m.id = r.movie_id");
  EXPECT_EQ(rs.num_rows(), 10u);
}

TEST_F(ExecTest, JoinWithFilters) {
  auto rs = Run(
      "SELECT m.title, r.actor FROM movies m, roles r "
      "WHERE m.id = r.movie_id AND m.year >= 2010 AND r.salary > 12");
  // movies with year>=2010: gamma(3) delta(4) epsilon(5) zeta(6) eta(7)
  // theta(8); roles with salary>12: cat@3(20), dan@5(30), cat@5(25),
  // ann@7(14), bob@8(13).
  EXPECT_EQ(rs.num_rows(), 5u);
}

TEST_F(ExecTest, JoinOnSyntax) {
  auto rs = Run(
      "SELECT m.title FROM movies m JOIN roles r ON m.id = r.movie_id "
      "WHERE r.actor = 'ann'");
  EXPECT_EQ(rs.num_rows(), 3u);
}

TEST_F(ExecTest, ResidualCrossTablePredicate) {
  auto rs = Run(
      "SELECT m.title, r.salary FROM movies m, roles r "
      "WHERE m.id = r.movie_id AND r.salary > m.rating");
  // Every joined pair in the tiny dataset has salary > rating.
  std::set<std::string> titles;
  for (size_t i = 0; i < rs.num_rows(); ++i) titles.insert(rs.row(i)[0].AsString());
  EXPECT_EQ(rs.num_rows(), 10u);
  EXPECT_TRUE(titles.count("alpha"));
}

TEST_F(ExecTest, DistinctAndOrderByLimit) {
  auto rs = Run("SELECT DISTINCT actor FROM roles ORDER BY actor");
  ASSERT_EQ(rs.num_rows(), 5u);
  EXPECT_EQ(rs.row(0)[0].AsString(), "ann");
  EXPECT_EQ(rs.row(4)[0].AsString(), "eve");

  auto top = Run("SELECT title FROM movies ORDER BY rating DESC LIMIT 3");
  ASSERT_EQ(top.num_rows(), 3u);
  EXPECT_EQ(top.row(0)[0].AsString(), "epsilon");
  EXPECT_EQ(top.row(1)[0].AsString(), "gamma");
  EXPECT_EQ(top.row(2)[0].AsString(), "eta");
}

TEST_F(ExecTest, LimitWithoutOrder) {
  EXPECT_EQ(Run("SELECT * FROM movies LIMIT 4").num_rows(), 4u);
  EXPECT_EQ(Run("SELECT * FROM movies LIMIT 0").num_rows(), 0u);
}

TEST_F(ExecTest, AggregatesNoGroup) {
  auto rs = Run("SELECT COUNT(*), SUM(rating), AVG(rating), MIN(year), "
                "MAX(year) FROM movies");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.row(0)[0].AsInt64(), 8);
  EXPECT_NEAR(rs.row(0)[1].AsDouble(), 55.0, 1e-9);
  EXPECT_NEAR(rs.row(0)[2].AsDouble(), 55.0 / 8, 1e-9);
  EXPECT_EQ(rs.row(0)[3].AsInt64(), 1999);
  EXPECT_EQ(rs.row(0)[4].AsInt64(), 2021);
}

TEST_F(ExecTest, AggregateOverEmptyInput) {
  auto rs = Run("SELECT COUNT(*), SUM(rating) FROM movies WHERE year = 1900");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.row(0)[0].AsInt64(), 0);
  EXPECT_TRUE(rs.row(0)[1].is_null());
}

TEST_F(ExecTest, GroupBy) {
  auto rs = Run("SELECT year, COUNT(*) FROM movies GROUP BY year");
  EXPECT_EQ(rs.num_rows(), 7u);  // 2010 appears twice
  int64_t total = 0;
  for (size_t i = 0; i < rs.num_rows(); ++i) total += rs.row(i)[1].AsInt64();
  EXPECT_EQ(total, 8);
}

TEST_F(ExecTest, GroupByOverJoin) {
  auto rs = Run(
      "SELECT r.actor, COUNT(*), AVG(r.salary) FROM movies m, roles r "
      "WHERE m.id = r.movie_id AND m.year >= 2010 GROUP BY r.actor");
  // Joined rows with year>=2010: cat@3, bob@3, dan@5, cat@5, ann@7, eve@8,
  // bob@8 -> actors: cat(2), bob(2), dan(1), ann(1), eve(1).
  EXPECT_EQ(rs.num_rows(), 5u);
}

TEST_F(ExecTest, CountDistinct) {
  auto rs = Run("SELECT COUNT(DISTINCT actor) FROM roles");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.row(0)[0].AsInt64(), 5);

  auto grouped = Run(
      "SELECT m.year, COUNT(DISTINCT r.actor) AS actors FROM movies m, "
      "roles r WHERE m.id = r.movie_id GROUP BY m.year ORDER BY actors "
      "DESC LIMIT 1");
  ASSERT_EQ(grouped.num_rows(), 1u);
  // 2021 (theta) has eve+bob = 2 distinct actors; others <= 2 as well, but
  // ordering is stable so any year with 2 wins; check the count.
  EXPECT_EQ(grouped.row(0)[1].AsInt64(), 2);
}

TEST_F(ExecTest, SumDistinctSkipsDuplicates) {
  // Two movies in 2010; their ratings are distinct, so SUM(DISTINCT year)
  // counts 2010 once.
  auto rs = Run("SELECT SUM(DISTINCT year) FROM movies WHERE year = 2010");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(rs.row(0)[0].AsDouble(), 2010.0);
}

TEST_F(ExecTest, HavingFiltersGroups) {
  auto rs = Run(
      "SELECT year, COUNT(*) AS c FROM movies GROUP BY year HAVING c > 1");
  ASSERT_EQ(rs.num_rows(), 1u);  // only 2010 has two movies
  EXPECT_EQ(rs.row(0)[0].AsInt64(), 2010);
  EXPECT_EQ(rs.row(0)[1].AsInt64(), 2);
}

TEST_F(ExecTest, HavingOnAggregateNameWithoutAlias) {
  auto rs = Run("SELECT actor, COUNT(*) FROM roles GROUP BY actor "
                "HAVING count >= 3");
  EXPECT_EQ(rs.num_rows(), 2u);  // ann and bob appear 3x
}

TEST_F(ExecTest, OrderByOverAggregates) {
  auto rs = Run(
      "SELECT actor, AVG(salary) AS avg_s FROM roles GROUP BY actor "
      "ORDER BY avg_s DESC LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.row(0)[0].AsString(), "dan");  // 30.0
  EXPECT_EQ(rs.row(1)[0].AsString(), "cat");  // 22.5
}

TEST_F(ExecTest, HavingPlusOrderByPlusLimit) {
  auto rs = Run(
      "SELECT actor, COUNT(*) AS c, SUM(salary) AS total FROM roles "
      "GROUP BY actor HAVING c >= 2 ORDER BY total DESC LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  // Multi-role actors: ann(33), bob(36), cat(45).
  EXPECT_EQ(rs.row(0)[0].AsString(), "cat");
  EXPECT_EQ(rs.row(1)[0].AsString(), "bob");
}

TEST_F(ExecTest, HavingUnknownNameIsError) {
  storage::DatabaseView view(db_.get());
  auto result = engine_.ExecuteSql(
      "SELECT actor, COUNT(*) FROM roles GROUP BY actor HAVING nope > 1",
      view);
  EXPECT_FALSE(result.ok());
}

TEST_F(ExecTest, ExecutionOverSubsetIsMonotoneSubset) {
  storage::ApproximationSet subset;
  subset.Add("movies", 0);  // alpha
  subset.Add("movies", 2);  // gamma
  subset.Add("roles", 0);   // ann@1
  subset.Add("roles", 3);   // cat@3
  subset.Add("roles", 5);   // dan@5 (movie absent from subset)
  subset.Seal();
  storage::DatabaseView sub_view(db_.get(), &subset);

  ASSERT_OK_AND_ASSIGN(
      auto bound,
      sql::ParseAndBind("SELECT m.title, r.actor FROM movies m, roles r "
                        "WHERE m.id = r.movie_id",
                        *db_));
  ASSERT_OK_AND_ASSIGN(auto full, engine_.Execute(bound, *view_));
  ASSERT_OK_AND_ASSIGN(auto approx, engine_.Execute(bound, sub_view));

  EXPECT_EQ(approx.num_rows(), 2u);  // (alpha,ann), (gamma,cat)
  // SPJ queries are monotone: every approximate row appears in the full
  // result.
  auto full_keys = full.RowKeySet();
  for (size_t i = 0; i < approx.num_rows(); ++i) {
    EXPECT_TRUE(full_keys.count(approx.RowKey(i)));
  }
}

TEST_F(ExecTest, CrossProductGuard) {
  QueryEngine tiny_engine(ExecOptions{.max_intermediate_rows = 10});
  auto result = tiny_engine.ExecuteSql(
      "SELECT * FROM movies m, roles r WHERE m.rating > r.salary", *view_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kExecutionError);
}

TEST_F(ExecTest, SelfJoinViaAliases) {
  auto rs = Run(
      "SELECT a.title, b.title FROM movies a, movies b "
      "WHERE a.year = b.year AND a.id < b.id");
  ASSERT_EQ(rs.num_rows(), 1u);  // the two 2010 movies
  EXPECT_EQ(rs.row(0)[0].AsString(), "gamma");
  EXPECT_EQ(rs.row(0)[1].AsString(), "delta");
}

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("hello", "h_lo"));
  EXPECT_FALSE(LikeMatch("hello", "x%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "%%c"));
}

TEST(EvaluatorTest, NullSemantics) {
  storage::Database db;
  auto t = std::make_shared<storage::Table>(
      "t", storage::Schema({{"x", storage::ValueType::kInt64}}));
  ASSERT_OK(t->AppendRow({storage::Value(int64_t{1})}));
  ASSERT_OK(t->AppendRow({storage::Value()}));
  ASSERT_OK(db.AddTable(t));
  storage::DatabaseView view(&db);
  QueryEngine engine;
  // NULL never matches comparisons (WHERE treats unknown as false)...
  ASSERT_OK_AND_ASSIGN(auto rs, engine.ExecuteSql(
      "SELECT * FROM t WHERE x = 1 OR x <> 1", view));
  EXPECT_EQ(rs.num_rows(), 1u);
  // ...but IS NULL finds it.
  ASSERT_OK_AND_ASSIGN(auto rs2,
                       engine.ExecuteSql("SELECT * FROM t WHERE x IS NULL", view));
  EXPECT_EQ(rs2.num_rows(), 1u);
  ASSERT_OK_AND_ASSIGN(auto rs3, engine.ExecuteSql(
      "SELECT * FROM t WHERE x IS NOT NULL", view));
  EXPECT_EQ(rs3.num_rows(), 1u);
}

}  // namespace
}  // namespace exec
}  // namespace asqp
