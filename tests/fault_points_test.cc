// Cross-checks for the fault-point registry (src/util/fault_points.h).
//
// The lint rule asqp-unregistered-fault-point keeps source literals inside
// the registry; this test closes the loop from the other side: every
// *registered* point must be exercised by at least one test, so the
// registry cannot accumulate entries whose failure path nobody covers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/fault_points.h"

namespace asqp {
namespace util {
namespace {

TEST(FaultPointRegistryTest, RegisteredLookupWorks) {
  ASSERT_GT(kNumFaultPoints, 0u);
  for (size_t i = 0; i < kNumFaultPoints; ++i) {
    EXPECT_TRUE(IsRegisteredFaultPoint(kFaultPoints[i])) << kFaultPoints[i];
  }
  EXPECT_FALSE(IsRegisteredFaultPoint("no.such.point"));
  EXPECT_FALSE(IsRegisteredFaultPoint(""));
  // Prefixes and extensions of a registered name are not registered.
  EXPECT_FALSE(IsRegisteredFaultPoint("exec"));
  EXPECT_FALSE(IsRegisteredFaultPoint("exec.deadline.extra"));
}

TEST(FaultPointRegistryTest, EveryRegisteredPointIsExercisedByATest) {
  namespace fs = std::filesystem;
  const fs::path tests_dir = fs::path(ASQP_SOURCE_DIR) / "tests";
  ASSERT_TRUE(fs::is_directory(tests_dir));

  // One corpus over every test source; a point is "exercised" when some
  // test names it as a quoted literal (armed via FaultInjector / spec
  // strings or asserted through a fallback_reason of "fault:<point>").
  std::string corpus;
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(tests_dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".cc") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buf;
    buf << in.rdbuf();
    corpus += buf.str();
    ++files;
  }
  ASSERT_GT(files, 1u);

  for (size_t i = 0; i < kNumFaultPoints; ++i) {
    const std::string quoted = "\"" + std::string(kFaultPoints[i]) + "\"";
    EXPECT_NE(corpus.find(quoted), std::string::npos)
        << "registered fault point " << kFaultPoints[i]
        << " is not exercised by any test under tests/ — add a test that "
           "arms it (or remove the dead registry entry)";
  }
}

}  // namespace
}  // namespace util
}  // namespace asqp
