// Seeded property tests for the ordered secondary index (storage/index):
// random builds over NULL-heavy, duplicate-heavy, and empty columns with
// point / range / open-ended lookups cross-checked against a linear-scan
// oracle (over full-database and approximation-set views), catalog scope
// coverage, the planner's access-path rule, end-to-end byte identity of
// index-on vs index-off execution, and generation-bump invalidation on
// FineTune. ASQP_SEED re-rolls the whole property stream.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "exec/executor.h"
#include "metric/workload.h"
#include "plan/planner.h"
#include "plan/stats.h"
#include "sql/binder.h"
#include "storage/database.h"
#include "storage/index.h"
#include "tests/testing.h"
#include "util/random.h"

namespace asqp {
namespace storage {
namespace {

uint64_t PropertySeed() {
  const char* env = std::getenv("ASQP_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260807;
}

/// True when non-NULL `v` satisfies `bound` (the oracle's predicate,
/// deliberately re-derived from Value::Compare rather than the index).
bool InBound(const Value& v, const IndexBound& bound) {
  if (bound.has_lower) {
    const int c = v.Compare(bound.lower);
    if (bound.lower_inclusive ? c < 0 : c <= 0) return false;
  }
  if (bound.has_upper) {
    const int c = v.Compare(bound.upper);
    if (bound.upper_inclusive ? c > 0 : c >= 0) return false;
  }
  return true;
}

/// Linear-scan oracle: visible-row ordinals with a non-NULL column value
/// satisfying `bound`, in scan order.
std::vector<uint32_t> OracleLookup(const DatabaseView& view,
                                   const Table& table, int column,
                                   const IndexBound& bound) {
  std::vector<uint32_t> out;
  const Column& col = table.column(static_cast<size_t>(column));
  for (size_t ord = 0; ord < view.VisibleRows(table); ++ord) {
    const Value v = col.ValueAt(view.PhysicalRow(table, ord));
    if (!v.is_null() && InBound(v, bound)) {
      out.push_back(static_cast<uint32_t>(ord));
    }
  }
  return out;
}

/// A random value for column `c` of the property table: NULL-heavy int64
/// (c=0), duplicate-heavy int64 over 4 distinct values (c=1), double with
/// occasional NULLs (c=2), short string over a small alphabet (c=3).
Value RandomCell(util::Rng* rng, size_t c) {
  switch (c) {
    case 0:
      if (rng->NextBounded(2) == 0) return Value::Null();
      return Value(static_cast<int64_t>(rng->NextBounded(200)) - 100);
    case 1:
      return Value(static_cast<int64_t>(rng->NextBounded(4)));
    case 2:
      if (rng->NextBounded(10) == 0) return Value::Null();
      return Value(rng->UniformDouble(-1.0, 1.0));
    default: {
      static const char* kWords[] = {"ash", "birch", "cedar", "doum", "elm"};
      return Value(std::string(kWords[rng->NextBounded(5)]));
    }
  }
}

/// A random bound for column `c`: point, closed range, half-open range,
/// open-ended above/below, or unbounded — with literals drawn from the
/// same domain as the data (so hits are common) but not restricted to
/// present values.
IndexBound RandomBound(util::Rng* rng, size_t c) {
  const auto literal = [&]() -> Value {
    switch (c) {
      case 0: return Value(static_cast<int64_t>(rng->NextBounded(220)) - 110);
      case 1: return Value(static_cast<int64_t>(rng->NextBounded(6)) - 1);
      case 2: return Value(rng->UniformDouble(-1.2, 1.2));
      default: {
        static const char* kWords[] = {"ash", "beech", "cedar", "elm", "zzz"};
        return Value(std::string(kWords[rng->NextBounded(5)]));
      }
    }
  };
  switch (rng->NextBounded(5)) {
    case 0:
      return IndexBound::Equal(literal());
    case 1: {  // range, random inclusivity; ensure lo <= hi
      Value a = literal();
      Value b = literal();
      if (a.Compare(b) > 0) std::swap(a, b);
      IndexBound bound;
      bound.has_lower = bound.has_upper = true;
      bound.lower = std::move(a);
      bound.upper = std::move(b);
      bound.lower_inclusive = rng->NextBounded(2) == 0;
      bound.upper_inclusive = rng->NextBounded(2) == 0;
      return bound;
    }
    case 2: {  // open-ended above
      IndexBound bound;
      bound.has_lower = true;
      bound.lower = literal();
      bound.lower_inclusive = rng->NextBounded(2) == 0;
      return bound;
    }
    case 3: {  // open-ended below
      IndexBound bound;
      bound.has_upper = true;
      bound.upper = literal();
      bound.upper_inclusive = rng->NextBounded(2) == 0;
      return bound;
    }
    default:
      return IndexBound{};  // unbounded: every non-NULL row
  }
}

TEST(OrderedIndexProperty, LookupsMatchLinearOracle) {
  util::Rng rng(PropertySeed());
  size_t nonempty_lookups = 0;
  for (size_t trial = 0; trial < 8; ++trial) {
    const size_t rows = trial == 0 ? 0 : rng.NextBounded(400);  // incl. empty
    auto table = std::make_shared<Table>(
        "props", Schema({{"sparse", ValueType::kInt64},
                         {"dup", ValueType::kInt64},
                         {"score", ValueType::kDouble},
                         {"word", ValueType::kString}}));
    for (size_t r = 0; r < rows; ++r) {
      ASSERT_OK(table->AppendRow({RandomCell(&rng, 0), RandomCell(&rng, 1),
                                  RandomCell(&rng, 2), RandomCell(&rng, 3)}));
    }
    Database db;
    ASSERT_OK(db.AddTable(table));

    // A random approximation set over ~half the rows, plus the full view.
    ApproximationSet subset;
    for (size_t r = 0; r < rows; ++r) {
      if (rng.NextBounded(2) == 0) {
        subset.Add("props", static_cast<uint32_t>(r));
      }
    }
    subset.Seal();
    const DatabaseView views[] = {DatabaseView(&db),
                                  DatabaseView(&db, &subset)};

    for (const DatabaseView& view : views) {
      for (size_t c = 0; c < table->num_columns(); ++c) {
        ASSERT_OK_AND_ASSIGN(
            OrderedIndex index,
            OrderedIndex::Build(view, *table, static_cast<int>(c)));
        // NULLs are excluded; everything else is indexed.
        size_t non_null = 0;
        for (size_t ord = 0; ord < view.VisibleRows(*table); ++ord) {
          non_null += table->column(c)
                              .ValueAt(view.PhysicalRow(*table, ord))
                              .is_null()
                          ? 0
                          : 1;
        }
        EXPECT_EQ(index.num_entries(), non_null);

        for (size_t probe = 0; probe < 12; ++probe) {
          const IndexBound bound = RandomBound(&rng, c);
          const std::vector<uint32_t> got = index.LookupRange(bound);
          const std::vector<uint32_t> want =
              OracleLookup(view, *table, static_cast<int>(c), bound);
          ASSERT_EQ(got, want)
              << "trial " << trial << " col " << c << " probe " << probe
              << " (seed " << PropertySeed() << ")";
          nonempty_lookups += got.empty() ? 0 : 1;
        }
      }
    }
  }
  // The probe domains overlap the data domains, so a healthy run exercises
  // plenty of non-empty ranges — guard against a vacuous pass.
  EXPECT_GT(nonempty_lookups, 50u);
}

TEST(IndexCatalog, ScopeCoverageAndLookup) {
  auto db = asqp::testing::MakeTinyMovieDb();
  ApproximationSet subset;
  subset.Add("movies", 0);
  subset.Add("movies", 2);
  subset.Seal();
  const DatabaseView full(db.get());
  const DatabaseView approx(db.get(), &subset);

  const IndexCatalog catalog =
      IndexCatalog::Build(approx, AllIndexColumns(*db), /*generation=*/7);
  // movies(4 cols) + roles(3 cols), all built.
  EXPECT_EQ(catalog.num_indexes(), 7u);
  EXPECT_EQ(catalog.failed_builds(), 0u);
  EXPECT_EQ(catalog.generation(), 7u);

  EXPECT_TRUE(catalog.CoversView(approx));
  EXPECT_FALSE(catalog.CoversView(full));
  ApproximationSet other;
  other.Add("movies", 0);
  other.Add("movies", 2);
  other.Seal();
  // Same visible rows, different subset identity: still not covered.
  EXPECT_FALSE(catalog.CoversView(DatabaseView(db.get(), &other)));

  ASSERT_NE(catalog.Find("movies", 2), nullptr);
  EXPECT_EQ(catalog.Find("movies", 99), nullptr);
  EXPECT_EQ(catalog.Find("nope", 0), nullptr);

  // The subset-scoped index indexes subset ordinals, not physical rows.
  const OrderedIndex* year = catalog.Find("movies", 2);
  EXPECT_EQ(year->num_entries(), 2u);
  // movies row 2 (year 2010) is subset ordinal 1.
  const std::vector<uint32_t> hit =
      year->LookupRange(IndexBound::Equal(Value(int64_t{2010})));
  EXPECT_EQ(hit, (std::vector<uint32_t>{1}));
}

TEST(IndexCatalog, ParseIndexColumns) {
  auto db = asqp::testing::MakeTinyMovieDb();
  ASSERT_OK_AND_ASSIGN(
      std::vector<IndexColumnSpec> specs,
      ParseIndexColumns(" movies.year , roles.actor ", *db));
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].table, "movies");
  EXPECT_EQ(specs[0].column, 2);
  EXPECT_EQ(specs[1].table, "roles");
  EXPECT_EQ(specs[1].column, 1);

  EXPECT_FALSE(ParseIndexColumns("movies", *db).ok());
  EXPECT_FALSE(ParseIndexColumns("movies.nope", *db).ok());
  EXPECT_FALSE(ParseIndexColumns("nope.year", *db).ok());
  ASSERT_OK_AND_ASSIGN(std::vector<IndexColumnSpec> empty,
                       ParseIndexColumns("", *db));
  EXPECT_TRUE(empty.empty());
}

// ---- Planner access-path rule + end-to-end byte identity ---------------

class IndexExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = asqp::testing::MakeTinyMovieDb();
    stats_ = std::make_shared<const plan::StatsCatalog>(
        plan::StatsCatalog::Collect(*db_));
    catalog_ = std::make_shared<const IndexCatalog>(IndexCatalog::Build(
        DatabaseView(db_.get()), AllIndexColumns(*db_), /*generation=*/0));
  }

  exec::QueryEngine MakeEngine(bool with_indexes, size_t threads = 1) const {
    exec::ExecOptions options;
    options.num_threads = threads;
    options.morsel_rows = 4;  // several morsels even over the tiny tables
    options.enable_planner = true;
    options.planner_stats = stats_;
    if (with_indexes) options.index_catalog = catalog_;
    return exec::QueryEngine(options);
  }

  std::shared_ptr<Database> db_;
  std::shared_ptr<const plan::StatsCatalog> stats_;
  std::shared_ptr<const IndexCatalog> catalog_;
};

TEST_F(IndexExecTest, IndexOnAndOffAreByteIdentical) {
  const char* kQueries[] = {
      "SELECT * FROM movies WHERE year = 2010",
      "SELECT title FROM movies WHERE year BETWEEN 2004 AND 2015",
      "SELECT * FROM movies WHERE 2010 <= year",
      "SELECT title, rating FROM movies WHERE rating > 7.0 AND year < 2021",
      "SELECT * FROM movies WHERE title = 'gamma'",
      "SELECT m.title, r.actor FROM movies m, roles r "
      "WHERE m.id = r.movie_id AND r.actor = 'bob'",
      "SELECT COUNT(*), AVG(rating) FROM movies WHERE year >= 2010",
      "SELECT * FROM movies WHERE year = 1800",  // empty range
  };
  for (const char* sql : kQueries) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      const DatabaseView view(db_.get());
      ASSERT_OK_AND_ASSIGN(exec::ResultSet off,
                           MakeEngine(false, threads).ExecuteSql(sql, view));
      ASSERT_OK_AND_ASSIGN(exec::ResultSet on,
                           MakeEngine(true, threads).ExecuteSql(sql, view));
      ASSERT_EQ(off.num_rows(), on.num_rows()) << sql;
      for (size_t r = 0; r < off.num_rows(); ++r) {
        ASSERT_EQ(off.RowKey(r), on.RowKey(r)) << sql << " row " << r;
      }
    }
  }
}

TEST_F(IndexExecTest, ExplainSurfacesChosenAccessPath) {
  const DatabaseView view(db_.get());
  // Selective equality over an indexed column: converted.
  ASSERT_OK_AND_ASSIGN(
      std::string indexed,
      MakeEngine(true).ExplainSql("SELECT * FROM movies WHERE year = 2010",
                                  view));
  EXPECT_NE(indexed.find("IndexRangeScan(year, [2010, 2010])"),
            std::string::npos)
      << indexed;
  // No catalog: same query full-scans.
  ASSERT_OK_AND_ASSIGN(
      std::string plain,
      MakeEngine(false).ExplainSql("SELECT * FROM movies WHERE year = 2010",
                                   view));
  EXPECT_EQ(plain.find("IndexRangeScan"), std::string::npos) << plain;
  EXPECT_NE(plain.find("FullScan"), std::string::npos) << plain;
  // Unselective predicate (most movies): stays a full scan even indexed.
  ASSERT_OK_AND_ASSIGN(
      std::string wide,
      MakeEngine(true).ExplainSql("SELECT * FROM movies WHERE year > 1800",
                                  view));
  EXPECT_EQ(wide.find("IndexRangeScan"), std::string::npos) << wide;
}

TEST_F(IndexExecTest, PlannerConvertsOnlySelectiveIndexableConjuncts) {
  ASSERT_OK_AND_ASSIGN(
      sql::BoundQuery bound,
      sql::ParseAndBind("SELECT * FROM movies WHERE year = 2010 AND "
                        "rating > 5.0",
                        *db_));
  plan::PlanSummary summary;
  const sql::BoundQuery planned =
      plan::PlanQuery(bound, stats_.get(), &summary, catalog_.get());
  ASSERT_EQ(planned.access_paths.size(), 1u);
  const sql::AccessPath& ap = planned.access_paths[0];
  EXPECT_EQ(ap.kind, sql::AccessPath::Kind::kIndexRange);
  EXPECT_EQ(ap.column, 2);  // year, the more selective of the two
  EXPECT_TRUE(ap.has_lower);
  EXPECT_TRUE(ap.has_upper);
  EXPECT_EQ(summary.index_scans, 1u);

  // Without a catalog the rule never fires.
  const sql::BoundQuery unplanned = plan::PlanQuery(bound, stats_.get());
  ASSERT_EQ(unplanned.access_paths.size(), 1u);
  EXPECT_EQ(unplanned.access_paths[0].kind, sql::AccessPath::Kind::kFullScan);

  // NOT BETWEEN and <> never convert (their ranges are not contiguous).
  ASSERT_OK_AND_ASSIGN(
      sql::BoundQuery negated,
      sql::ParseAndBind(
          "SELECT * FROM movies WHERE year NOT BETWEEN 2000 AND 2020", *db_));
  const sql::BoundQuery negated_planned =
      plan::PlanQuery(negated, stats_.get(), nullptr, catalog_.get());
  EXPECT_EQ(negated_planned.access_paths[0].kind,
            sql::AccessPath::Kind::kFullScan);
}

// ---- Generation-bump invalidation on FineTune --------------------------

TEST(IndexLifecycle, FineTuneRebuildsCatalogAtNewGeneration) {
  data::DatasetOptions opts;
  opts.scale = 0.03;
  opts.workload_size = 12;
  opts.seed = 11;
  const data::DatasetBundle bundle = data::MakeImdbJob(opts);

  core::AsqpConfig config;
  config.k = 150;
  config.frame_size = 25;
  config.num_representatives = 6;
  config.pool_target = 200;
  config.max_tuples_per_rep = 800;
  config.trainer.iterations = 4;
  config.trainer.episodes_per_iteration = 2;
  config.trainer.num_workers = 1;
  config.trainer.hidden_dim = 32;
  config.seed = 5;

  core::AsqpTrainer trainer(config);
  ASSERT_OK_AND_ASSIGN(core::TrainReport report,
                       trainer.Train(*bundle.db, bundle.workload));
  core::AsqpModel& model = *report.model;

  const std::shared_ptr<const IndexCatalog> before = model.index_catalog();
  ASSERT_NE(before, nullptr);
  EXPECT_GT(before->num_indexes(), 0u);
  EXPECT_EQ(before->generation(), model.generation());
  EXPECT_TRUE(
      before->CoversView(DatabaseView(bundle.db.get(),
                                      &model.approximation_set())));

  const uint64_t gen_before = model.generation();
  ASSERT_OK_AND_ASSIGN(
      metric::Workload drift,
      metric::Workload::FromSql(
          {"SELECT p.name FROM person p WHERE p.birth_year > 1980",
           "SELECT p.name FROM person p WHERE p.birth_year < 1940"}));
  ASSERT_OK(model.FineTune(drift));

  const std::shared_ptr<const IndexCatalog> after = model.index_catalog();
  ASSERT_NE(after, nullptr);
  // The old catalog is invalid for the new set: FineTune swapped in a
  // fresh build stamped with the bumped generation.
  EXPECT_NE(after, before);
  EXPECT_EQ(model.generation(), gen_before + 1);
  EXPECT_EQ(after->generation(), model.generation());
  EXPECT_TRUE(after->CoversView(
      DatabaseView(bundle.db.get(), &model.approximation_set())));
}

}  // namespace
}  // namespace storage
}  // namespace asqp
