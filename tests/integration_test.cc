// End-to-end integration: the full ASQP-RL pipeline on every dataset
// bundle, plus cross-module flows (train -> save set -> load -> query).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/trainer.h"
#include "data/dataset.h"
#include "io/io.h"
#include "metric/score.h"
#include "tests/testing.h"

namespace asqp {
namespace {

class PipelineTest : public ::testing::TestWithParam<std::string> {
 protected:
  static data::DatasetBundle MakeBundle(const std::string& name) {
    data::DatasetOptions options;
    options.scale = 0.04;
    options.workload_size = 16;
    options.seed = 31;
    if (name == "imdb") return data::MakeImdbJob(options);
    if (name == "mas") return data::MakeMas(options);
    return data::MakeFlights(options);
  }

  static core::AsqpConfig SmallConfig() {
    core::AsqpConfig config;
    config.k = 250;
    config.frame_size = 20;
    config.num_representatives = 10;
    config.pool_target = 400;
    config.trainer.iterations = 10;
    config.trainer.num_workers = 1;
    config.trainer.learning_rate = 2e-3;
    config.trainer.hidden_dim = 64;
    config.seed = 11;
    return config;
  }
};

TEST_P(PipelineTest, TrainEvaluateAnswer) {
  const data::DatasetBundle bundle = MakeBundle(GetParam());
  util::Rng rng(3);
  auto [train, test] = bundle.workload.TrainTestSplit(0.75, &rng);

  core::AsqpTrainer trainer(SmallConfig());
  ASSERT_OK_AND_ASSIGN(core::TrainReport report,
                       trainer.Train(*bundle.db, train));
  core::AsqpModel& model = *report.model;

  // The set respects the budget and is non-trivial.
  EXPECT_GT(model.approximation_set().TotalTuples(), 10u);
  EXPECT_LE(model.approximation_set().TotalTuples(), SmallConfig().k);

  // Training quality: noticeably better than random on the train side.
  metric::ScoreEvaluator evaluator(bundle.db.get(),
                                   metric::ScoreOptions{.frame_size = 20});
  ASSERT_OK_AND_ASSIGN(double train_score,
                       evaluator.Score(train, model.approximation_set()));
  EXPECT_GT(train_score, 0.3) << GetParam();

  // Every query (train and test) flows through the mediator without error.
  for (const auto* part : {&train, &test}) {
    for (const auto& wq : part->queries()) {
      ASSERT_OK_AND_ASSIGN(core::AnswerResult answer, model.Answer(wq.stmt));
      EXPECT_GE(answer.answerability, 0.0);
      EXPECT_LE(answer.answerability, 1.0);
    }
  }
  // The training curve was recorded.
  EXPECT_FALSE(report.iteration_scores.empty());
  EXPECT_GT(report.episodes, 0u);
}

TEST_P(PipelineTest, SaveLoadSetPreservesScore) {
  const data::DatasetBundle bundle = MakeBundle(GetParam());
  core::AsqpTrainer trainer(SmallConfig());
  ASSERT_OK_AND_ASSIGN(core::TrainReport report,
                       trainer.Train(*bundle.db, bundle.workload));

  const std::string path =
      ::testing::TempDir() + "asqp_set_" + GetParam() + ".txt";
  ASSERT_OK(io::SaveApproximationSet(report.model->approximation_set(), path));
  ASSERT_OK_AND_ASSIGN(storage::ApproximationSet loaded,
                       io::LoadApproximationSet(path, bundle.db.get()));
  std::remove(path.c_str());

  metric::ScoreEvaluator evaluator(bundle.db.get(),
                                   metric::ScoreOptions{.frame_size = 20});
  ASSERT_OK_AND_ASSIGN(
      double original,
      evaluator.Score(bundle.workload, report.model->approximation_set()));
  ASSERT_OK_AND_ASSIGN(double reloaded,
                       evaluator.Score(bundle.workload, loaded));
  EXPECT_DOUBLE_EQ(original, reloaded);
}

INSTANTIATE_TEST_SUITE_P(Datasets, PipelineTest,
                         ::testing::Values("imdb", "mas", "flights"));

TEST(PipelineDeterminismTest, SameSeedSameApproximationSet) {
  data::DatasetOptions options;
  options.scale = 0.03;
  options.workload_size = 10;
  const data::DatasetBundle bundle = data::MakeImdbJob(options);

  core::AsqpConfig config;
  config.k = 150;
  config.trainer.iterations = 5;
  config.trainer.num_workers = 1;  // determinism needs serial rollouts
  core::AsqpTrainer trainer(config);

  ASSERT_OK_AND_ASSIGN(auto a, trainer.Train(*bundle.db, bundle.workload));
  ASSERT_OK_AND_ASSIGN(auto b, trainer.Train(*bundle.db, bundle.workload));
  EXPECT_EQ(a.model->approximation_set().rows(),
            b.model->approximation_set().rows());
}

}  // namespace
}  // namespace asqp
