#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exec/executor.h"
#include "io/io.h"
#include "rl/policy.h"
#include "sql/parser.h"
#include "tests/testing.h"
#include "util/random.h"

namespace asqp {
namespace io {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& contents = "") {
    static int counter = 0;
    path_ = ::testing::TempDir() + "asqp_io_test_" + std::to_string(counter++);
    if (!contents.empty()) {
      std::ofstream out(path_);
      out << contents;
    }
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SplitCsvLineTest, PlainQuotedAndEscaped) {
  auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b");

  fields = SplitCsvLine(R"("a,b",c)");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");

  fields = SplitCsvLine(R"("say ""hi""",x)");
  EXPECT_EQ(fields[0], "say \"hi\"");

  fields = SplitCsvLine("a,,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");

  fields = SplitCsvLine("one\r");
  EXPECT_EQ(fields[0], "one");
}

TEST(LoadCsvTableTest, TypeInferenceAndNulls) {
  TempFile file(
      "id,score,name\n"
      "1,2.5,alice\n"
      "2,,bob\n"
      "3,4.0,\"comma, name\"\n");
  ASSERT_OK_AND_ASSIGN(auto table, LoadCsvTable(file.path(), "t"));
  EXPECT_EQ(table->num_rows(), 3u);
  ASSERT_EQ(table->num_columns(), 3u);
  EXPECT_EQ(table->schema().field(0).type, storage::ValueType::kInt64);
  EXPECT_EQ(table->schema().field(1).type, storage::ValueType::kDouble);
  EXPECT_EQ(table->schema().field(2).type, storage::ValueType::kString);
  EXPECT_EQ(table->column(0).Int64At(2), 3);
  EXPECT_TRUE(table->column(1).IsNull(1));
  EXPECT_EQ(table->column(2).StringAt(2), "comma, name");
}

TEST(LoadCsvTableTest, IntColumnPromotedToDoubleThenString) {
  TempFile file("x\n1\n2.5\n");
  ASSERT_OK_AND_ASSIGN(auto table, LoadCsvTable(file.path(), "t"));
  EXPECT_EQ(table->schema().field(0).type, storage::ValueType::kDouble);

  TempFile file2("x\n1\nhello\n");
  ASSERT_OK_AND_ASSIGN(auto table2, LoadCsvTable(file2.path(), "t"));
  EXPECT_EQ(table2->schema().field(0).type, storage::ValueType::kString);
}

TEST(LoadCsvTableTest, Errors) {
  EXPECT_FALSE(LoadCsvTable("/nonexistent/file.csv", "t").ok());
  TempFile empty("");
  EXPECT_FALSE(LoadCsvTable(empty.path(), "t").ok());
  TempFile ragged("a,b\n1\n");
  EXPECT_FALSE(LoadCsvTable(ragged.path(), "t").ok());
}

TEST(ParseCsvLineTest, StrictErrorsCarryFieldIndex) {
  std::vector<std::string> fields;
  size_t bad_field = 0;

  ASSERT_OK(ParseCsvLine(R"(a,"b,c",d)", &fields, &bad_field));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");

  util::Status st = ParseCsvLine(R"(a,"unterminated)", &fields, &bad_field);
  EXPECT_EQ(st.code(), util::StatusCode::kParseError);
  EXPECT_EQ(bad_field, 2u);

  st = ParseCsvLine(R"(a,"done"oops,b)", &fields, &bad_field);
  EXPECT_EQ(st.code(), util::StatusCode::kParseError);
  EXPECT_EQ(bad_field, 2u);

  st = ParseCsvLine(R"(plain"quote)", &fields, &bad_field);
  EXPECT_EQ(st.code(), util::StatusCode::kParseError);
  EXPECT_EQ(bad_field, 1u);
}

TEST(LoadCsvTableTest, CorruptedFixturesNameLineAndColumn) {
  // Unterminated quote on data line 3, second column.
  TempFile unterminated("a,b\n1,x\n2,\"broken\n");
  auto r1 = LoadCsvTable(unterminated.path(), "t");
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(r1.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(r1.status().message().find("column 2"), std::string::npos);

  // Stray text after a closing quote.
  TempFile stray("a\n\"ok\"junk\n");
  auto r2 = LoadCsvTable(stray.path(), "t");
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(r2.status().message().find("line 2"), std::string::npos);

  // Ragged row reports the offending line.
  TempFile ragged("a,b\n1,2\n3\n");
  auto r3 = LoadCsvTable(ragged.path(), "t");
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(r3.status().message().find("line 3"), std::string::npos);

  // A corrupt header is reported as line 1.
  TempFile bad_header("a,\"b\n1,2\n");
  auto r4 = LoadCsvTable(bad_header.path(), "t");
  ASSERT_FALSE(r4.ok());
  EXPECT_NE(r4.status().message().find("line 1"), std::string::npos);
}

TEST(WriteCsvTest, RoundTripsThroughLoad) {
  exec::ResultSet rs({"id", "label"});
  rs.AddRow({storage::Value(int64_t{1}), storage::Value(std::string("x,y"))});
  rs.AddRow({storage::Value(int64_t{2}), storage::Value()});
  std::ostringstream out;
  ASSERT_OK(WriteCsv(rs, out));

  TempFile file(out.str());
  ASSERT_OK_AND_ASSIGN(auto table, LoadCsvTable(file.path(), "t"));
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->column(1).StringAt(0), "x,y");
  EXPECT_TRUE(table->column(1).IsNull(1));
}

TEST(ApproximationSetIoTest, SaveLoadRoundTrip) {
  auto db = testing::MakeTinyMovieDb();
  storage::ApproximationSet set;
  set.Add("movies", 1);
  set.Add("movies", 5);
  set.Add("roles", 3);
  set.Seal();

  TempFile file;
  ASSERT_OK(SaveApproximationSet(set, file.path()));
  ASSERT_OK_AND_ASSIGN(auto loaded,
                       LoadApproximationSet(file.path(), db.get()));
  EXPECT_EQ(loaded.rows(), set.rows());
}

TEST(ApproximationSetIoTest, ValidationAgainstDatabase) {
  auto db = testing::MakeTinyMovieDb();
  TempFile bad_table("nope 1\n");
  EXPECT_FALSE(LoadApproximationSet(bad_table.path(), db.get()).ok());
  TempFile bad_row("movies 9999\n");
  EXPECT_FALSE(LoadApproximationSet(bad_row.path(), db.get()).ok());
  // Without a database, no validation happens.
  ASSERT_OK_AND_ASSIGN(auto loose, LoadApproximationSet(bad_row.path()));
  EXPECT_EQ(loose.TotalTuples(), 1u);
}

TEST(ApproximationSetIoTest, CommentsAndBlanksIgnored) {
  TempFile file("# header\n\nmovies 2\n# trailing\nroles 0\n");
  ASSERT_OK_AND_ASSIGN(auto set, LoadApproximationSet(file.path()));
  EXPECT_EQ(set.TotalTuples(), 2u);
  EXPECT_TRUE(set.Contains("movies", 2));
}

TEST(ApproximationSetIoTest, MalformedLineRejected) {
  TempFile file("movies\n");
  EXPECT_FALSE(LoadApproximationSet(file.path()).ok());
}

TEST(WorkloadIoTest, SaveLoadRoundTrip) {
  metric::Workload w;
  auto q1 = sql::Parse("SELECT a FROM t WHERE x > 5 AND name = 'it''s'");
  auto q2 = sql::Parse("SELECT b, COUNT(*) FROM t GROUP BY b");
  ASSERT_TRUE(q1.ok() && q2.ok());
  w.Add(std::move(q1).value(), 3.0);
  w.Add(std::move(q2).value(), 1.0);
  w.NormalizeWeights();

  TempFile file;
  ASSERT_OK(SaveWorkload(w, file.path()));
  ASSERT_OK_AND_ASSIGN(metric::Workload loaded, LoadWorkload(file.path()));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.query(0).ToSql(), w.query(0).ToSql());
  EXPECT_EQ(loaded.query(1).ToSql(), w.query(1).ToSql());
  EXPECT_NEAR(loaded.query(0).weight, 0.75, 1e-9);
}

TEST(WorkloadIoTest, RejectsMalformedLines) {
  TempFile no_tab("0.5 SELECT a FROM t\n");
  EXPECT_FALSE(LoadWorkload(no_tab.path()).ok());
  TempFile bad_weight("abc\tSELECT a FROM t\n");
  EXPECT_FALSE(LoadWorkload(bad_weight.path()).ok());
  TempFile bad_sql("0.5\tSELECT FROM\n");
  EXPECT_FALSE(LoadWorkload(bad_sql.path()).ok());
  TempFile comments_only("# nothing\n\n");
  ASSERT_OK_AND_ASSIGN(auto empty, LoadWorkload(comments_only.path()));
  EXPECT_TRUE(empty.empty());
}

TEST(PolicyIoTest, SaveLoadRoundTripsOutputs) {
  rl::Policy policy = rl::Policy::Create(/*state_dim=*/12, /*actions=*/6,
                                         /*hidden=*/16, /*with_critic=*/true,
                                         /*seed=*/5);
  TempFile file;
  ASSERT_OK(SavePolicy(policy, file.path()));
  ASSERT_OK_AND_ASSIGN(rl::Policy loaded, LoadPolicy(file.path()));
  ASSERT_NE(loaded.actor, nullptr);
  ASSERT_NE(loaded.critic, nullptr);

  util::Rng rng(1);
  std::vector<float> state(12);
  for (float& v : state) v = static_cast<float>(rng.UniformDouble(-1, 1));
  const std::vector<uint8_t> mask(6, 1);
  const auto a = policy.Act(state, mask, &rng, /*greedy=*/true);
  const auto b = loaded.Act(state, mask, &rng, /*greedy=*/true);
  EXPECT_EQ(a.action, b.action);
  EXPECT_NEAR(a.value, b.value, 1e-5f);
  for (size_t i = 0; i < a.probs.size(); ++i) {
    EXPECT_NEAR(a.probs[i], b.probs[i], 1e-5f);
  }
}

TEST(PolicyIoTest, ActorOnlyPolicy) {
  rl::Policy policy = rl::Policy::Create(8, 4, 8, /*with_critic=*/false, 3);
  TempFile file;
  ASSERT_OK(SavePolicy(policy, file.path()));
  ASSERT_OK_AND_ASSIGN(rl::Policy loaded, LoadPolicy(file.path()));
  EXPECT_EQ(loaded.critic, nullptr);
}

TEST(PolicyIoTest, RejectsGarbage) {
  TempFile garbage("not a policy file\n");
  EXPECT_FALSE(LoadPolicy(garbage.path()).ok());
  rl::Policy empty;
  TempFile file;
  EXPECT_FALSE(SavePolicy(empty, file.path()).ok());
  EXPECT_FALSE(LoadPolicy("/nonexistent").ok());
}

TEST(CsvQueryIntegrationTest, LoadedCsvIsQueryable) {
  TempFile file(
      "city,population\n"
      "springfield,30000\n"
      "shelbyville,25000\n"
      "capital,900000\n");
  ASSERT_OK_AND_ASSIGN(auto table, LoadCsvTable(file.path(), "cities"));
  storage::Database db;
  ASSERT_OK(db.AddTable(table));
  exec::QueryEngine engine;
  storage::DatabaseView view(&db);
  ASSERT_OK_AND_ASSIGN(
      auto rs, engine.ExecuteSql(
                   "SELECT city FROM cities WHERE population > 28000 "
                   "ORDER BY population DESC",
                   view));
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.row(0)[0].AsString(), "capital");
}

}  // namespace
}  // namespace io
}  // namespace asqp
