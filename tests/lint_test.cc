// Golden tests for tools/asqp_lint: known-bad snippets in, exact
// file:line:col diagnostics out, plus suppression semantics. The linter
// library is linked directly so these tests exercise the same code path
// as the `lint` build target.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "asqp_lint/lint.h"

namespace asqp {
namespace lint {
namespace {

/// Lint `source` as `path`, building the function registry from the same
/// source (declarations and uses usually travel together in the fixtures).
std::vector<Diagnostic> Lint(const std::string& path,
                             const std::string& source) {
  FunctionRegistry registry;
  CollectStatusFunctions(source, &registry);
  return LintSource(path, source, registry);
}

std::vector<std::string> Render(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  out.reserve(diags.size());
  for (const Diagnostic& d : diags) out.push_back(d.ToString());
  return out;
}

// --- registry --------------------------------------------------------------

TEST(LintRegistryTest, CollectsStatusAndResultReturningFunctions) {
  FunctionRegistry registry;
  CollectStatusFunctions(
      "util::Status Save(int x);\n"
      "Status Plain();\n"
      "util::Result<std::vector<int>> Load(const std::string& p);\n"
      "static Result<Foo> Make();\n"
      "void NotTracked();\n"
      "int AlsoNot(int);\n",
      &registry);
  EXPECT_EQ(registry.status_returning.count("Save"), 1u);
  EXPECT_EQ(registry.status_returning.count("Plain"), 1u);
  EXPECT_EQ(registry.status_returning.count("Load"), 1u);
  EXPECT_EQ(registry.status_returning.count("Make"), 1u);
  EXPECT_EQ(registry.status_returning.count("NotTracked"), 0u);
  EXPECT_EQ(registry.status_returning.count("AlsoNot"), 0u);
}

// --- asqp-discarded-status -------------------------------------------------

TEST(LintDiscardTest, FlagsDiscardedCallWithExactLocation) {
  const std::string src =
      "util::Status Save(int x);\n"   // line 1
      "void F() {\n"                  // line 2
      "  Save(1);\n"                  // line 3, col 3
      "}\n";
  const auto diags = Lint("src/io/io.cc", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/io/io.cc");
  EXPECT_EQ(diags[0].line, 3u);
  EXPECT_EQ(diags[0].col, 3u);
  EXPECT_EQ(diags[0].rule, "asqp-discarded-status");
  EXPECT_EQ(Render(diags)[0].substr(0, 52),
            "src/io/io.cc:3:3: error: [asqp-discarded-status] res");
}

TEST(LintDiscardTest, FlagsMethodAndQualifiedCalls) {
  const std::string src =
      "struct W { util::Status Flush(); };\n"
      "util::Status io::Sync(int);\n"
      "void F(W* w, W& r) {\n"
      "  w->Flush();\n"    // line 4
      "  r.Flush();\n"     // line 5
      "  io::Sync(2);\n"   // line 6
      "}\n";
  const auto diags = Lint("src/io/io.cc", src);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].line, 4u);
  EXPECT_EQ(diags[1].line, 5u);
  EXPECT_EQ(diags[2].line, 6u);
  EXPECT_EQ(diags[2].col, 7u);  // the `Sync` token, not the `io` qualifier
}

TEST(LintDiscardTest, ConsumedOrSanctionedCallsAreClean) {
  const std::string src =
      "util::Status Save(int x);\n"
      "util::Status G() {\n"
      "  ASQP_RETURN_NOT_OK(Save(1));\n"       // ASQP_* macro: sanctioned
      "  util::Status s = Save(2);\n"          // assigned
      "  if (Save(3).ok()) { (void)Save(4); }\n"  // tested / void-cast
      "  return Save(5);\n"                    // returned
      "}\n";
  EXPECT_TRUE(Lint("src/io/io.cc", src).empty());
}

TEST(LintDiscardTest, MultiLineCallIsStillOneStatement) {
  const std::string src =
      "util::Status Save(int x, int y);\n"
      "void F() {\n"
      "  Save(1,\n"
      "       2);\n"
      "}\n";
  const auto diags = Lint("src/io/io.cc", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3u);
}

// --- suppression -----------------------------------------------------------

TEST(LintSuppressionTest, NolintWithMatchingRuleSuppresses) {
  const std::string src =
      "util::Status Save(int x);\n"
      "void F() {\n"
      "  Save(1);  // NOLINT(asqp-discarded-status)\n"
      "}\n";
  EXPECT_TRUE(Lint("src/io/io.cc", src).empty());
}

TEST(LintSuppressionTest, BareNolintSuppressesEverything) {
  const std::string src =
      "util::Status Save(int x);\n"
      "void F() {\n"
      "  Save(1);  // NOLINT\n"
      "}\n";
  EXPECT_TRUE(Lint("src/io/io.cc", src).empty());
}

TEST(LintSuppressionTest, WrongRuleNameDoesNotSuppress) {
  const std::string src =
      "util::Status Save(int x);\n"
      "void F() {\n"
      "  Save(1);  // NOLINT(asqp-naked-new)\n"
      "}\n";
  ASSERT_EQ(Lint("src/io/io.cc", src).size(), 1u);
}

TEST(LintSuppressionTest, NolintNextLineSuppressesTheLineBelow) {
  const std::string src =
      "util::Status Save(int x);\n"
      "void F() {\n"
      "  // NOLINTNEXTLINE(asqp-discarded-status)\n"
      "  Save(1);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/io/io.cc", src).empty());
}

// --- asqp-nondeterminism ---------------------------------------------------

TEST(LintNondeterminismTest, FlagsBannedGenerators) {
  const std::string src =
      "void F() {\n"
      "  int x = rand();\n"            // line 2
      "  std::random_device rd;\n"     // line 3
      "  std::mt19937 gen;\n"          // line 4: unseeded
      "  std::mt19937 ok(42);\n"       // seeded: allowed
      "  std::mt19937_64 also{7};\n"   // seeded: allowed
      "}\n";
  const auto diags = Lint("tests/foo_test.cc", src);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_EQ(diags[1].line, 3u);
  EXPECT_EQ(diags[2].line, 4u);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "asqp-nondeterminism");
}

TEST(LintNondeterminismTest, WallClockOnlyBannedInLibraryCode) {
  const std::string src =
      "void F() { auto t = std::chrono::system_clock::now(); }\n";
  EXPECT_EQ(Lint("src/core/model.cc", src).size(), 1u);
  EXPECT_TRUE(Lint("src/util/stopwatch.h", src).empty());
  EXPECT_TRUE(Lint("tests/foo_test.cc", src).empty());
  EXPECT_TRUE(Lint("bench/bench_fig2.cc", src).empty());
}

// --- asqp-naked-new --------------------------------------------------------

TEST(LintNakedNewTest, FlagsNewAndDeleteOutsideUtil) {
  const std::string src =
      "void F() {\n"
      "  int* p = new int(3);\n"  // line 2, col 12
      "  delete p;\n"             // line 3, col 3
      "}\n";
  const auto diags = Lint("src/exec/executor.cc", src);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "asqp-naked-new");
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_EQ(diags[0].col, 12u);
  EXPECT_EQ(diags[1].line, 3u);
  EXPECT_EQ(diags[1].col, 3u);
}

TEST(LintNakedNewTest, UtilAndDeletedFunctionsAreExempt) {
  const std::string alloc = "void F() { int* p = new int; delete p; }\n";
  EXPECT_TRUE(Lint("src/util/fault_injector.cc", alloc).empty());
  const std::string deleted =
      "struct T {\n"
      "  T(const T&) = delete;\n"
      "  T& operator=(const T&) = delete;\n"
      "};\n";
  EXPECT_TRUE(Lint("src/exec/executor.h", deleted).empty());
}

// --- asqp-catch-all --------------------------------------------------------

TEST(LintCatchAllTest, FlagsSwallowingHandler) {
  const std::string src =
      "void F() {\n"
      "  try { G(); } catch (...) {\n"  // line 2, col 16
      "  }\n"
      "}\n";
  const auto diags = Lint("src/exec/executor.cc", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "asqp-catch-all");
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_EQ(diags[0].col, 16u);
}

TEST(LintCatchAllTest, RethrowOrConvertIsClean) {
  EXPECT_TRUE(Lint("src/a/b.cc",
                   "void F() { try { G(); } catch (...) { throw; } }\n")
                  .empty());
  EXPECT_TRUE(
      Lint("src/a/b.cc",
           "void F() {\n"
           "  try { G(); } catch (...) { e = std::current_exception(); }\n"
           "}\n")
          .empty());
  EXPECT_TRUE(
      Lint("src/a/b.cc",
           "util::Status F() {\n"
           "  try { G(); } catch (...) {\n"
           "    return util::Status::ExecutionError(\"boom\");\n"
           "  }\n"
           "  return util::Status::OK();\n"
           "}\n")
          .empty());
}

// --- asqp-unsynchronized-shared-write --------------------------------------

TEST(LintSharedWriteTest, FlagsByRefMutationsInsideParallelLambda) {
  const std::string src =
      "void F(util::ThreadPool* pool) {\n"
      "  size_t hits = 0;\n"
      "  std::vector<int> rows;\n"
      "  pool->ParallelFor(100, [&](size_t i) {\n"
      "    hits += 1;\n"            // line 5, col 5: compound assignment
      "    rows.push_back(1);\n"    // line 6, col 5: mutating method
      "  });\n"
      "}\n";
  const auto diags = Lint("src/exec/executor.cc", src);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "asqp-unsynchronized-shared-write");
  EXPECT_EQ(diags[0].line, 5u);
  EXPECT_EQ(diags[0].col, 5u);
  EXPECT_NE(diags[0].message.find("'hits'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("ParallelFor"), std::string::npos);
  EXPECT_EQ(diags[1].line, 6u);
  EXPECT_NE(diags[1].message.find("'rows'"), std::string::npos);
}

TEST(LintSharedWriteTest, FlagsExplicitCaptureAssignIncrementAndMember) {
  const std::string src =
      "void F(util::ThreadPool* pool) {\n"
      "  int total = 0;\n"
      "  Stats stats;\n"
      "  size_t n = 0;\n"
      "  pool->ParallelForChunked(100, 10,\n"
      "      [&total, &stats, &n](size_t c, size_t b, size_t e) {\n"
      "        total = 1;\n"          // line 7: direct assignment
      "        stats.count = 2;\n"    // line 8: member assignment
      "        ++n;\n"                // line 9: increment
      "        return Status::OK();\n"
      "      });\n"
      "}\n";
  const auto diags = Lint("src/exec/executor.cc", src);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].line, 7u);
  EXPECT_NE(diags[0].message.find("'total'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("ParallelForChunked"), std::string::npos);
  EXPECT_EQ(diags[1].line, 8u);
  EXPECT_NE(diags[1].message.find("'stats'"), std::string::npos);
  EXPECT_EQ(diags[2].line, 9u);
  EXPECT_NE(diags[2].message.find("'n'"), std::string::npos);
}

TEST(LintSharedWriteTest, PerChunkSlotAtomicsAndLocalsAreClean) {
  const std::string src =
      "void F(util::ThreadPool* pool) {\n"
      "  std::vector<TupleSet> parts(10);\n"
      "  std::atomic<size_t> total{0};\n"
      "  pool->ParallelForChunked(100, 10,\n"
      "      [&](size_t chunk, size_t begin, size_t end) {\n"
      "        TupleSet local;\n"                   // body-local: private
      "        local.num_tables = 3;\n"
      "        local.Append(nullptr);\n"
      "        total.fetch_add(local.size());\n"    // atomic method
      "        parts[chunk] = std::move(local);\n"  // per-chunk slot
      "        return Status::OK();\n"
      "      });\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", src).empty());
}

TEST(LintSharedWriteTest, MutexGuardedBodyAndReadsAreClean) {
  const std::string guarded =
      "void F(util::ThreadPool* pool, std::vector<int>& out) {\n"
      "  std::mutex mu;\n"
      "  pool->ParallelFor(100, [&](size_t i) {\n"
      "    std::lock_guard<std::mutex> lock(mu);\n"
      "    out.push_back(1);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", guarded).empty());
  const std::string reads =
      "void F(util::ThreadPool* pool, const std::vector<int>& in) {\n"
      "  size_t limit = in.size();\n"
      "  pool->ParallelFor(100, [&](size_t i) {\n"
      "    if (i == limit || in[i] >= 3) Use(in[i], limit);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", reads).empty());
}

TEST(LintSharedWriteTest, LambdaOutsideParallelEntryIsNotFlagged) {
  const std::string src =
      "void F() {\n"
      "  int count = 0;\n"
      "  auto bump = [&count]() { count += 1; };\n"
      "  std::for_each(v.begin(), v.end(), [&](int x) { count += x; });\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", src).empty());
}

TEST(LintSharedWriteTest, NolintSuppressesSharedWrite) {
  const std::string src =
      "void F(util::ThreadPool* pool) {\n"
      "  size_t hits = 0;\n"
      "  pool->ParallelFor(100, [&](size_t i) {\n"
      "    hits += 1;  // NOLINT(asqp-unsynchronized-shared-write)\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", src).empty());
}

// --- lexical robustness ----------------------------------------------------

TEST(LintLexerTest, IgnoresCommentsStringsAndPreprocessor) {
  const std::string src =
      "#include <random>  // has random_device in the path\n"
      "#define MAKE_RNG() std::random_device{}\n"
      "const char* s = \"rand() system_clock new delete\";\n"
      "// rand() in a comment\n"
      "/* new delete catch (...) { } */\n"
      "char c = 'r';\n";
  EXPECT_TRUE(Lint("src/core/model.cc", src).empty());
}

TEST(LintLexerTest, RawStringsDoNotLeakTokens) {
  const std::string src =
      "const char* sql = R\"(SELECT rand() FROM t; new delete)\";\n";
  EXPECT_TRUE(Lint("src/core/model.cc", src).empty());
}

TEST(LintLexerTest, DigitSeparatorsDoNotSplitTokens) {
  const std::string src = "constexpr long kBig = 1'000'000;\n";
  EXPECT_TRUE(Lint("src/core/model.cc", src).empty());
}

}  // namespace
}  // namespace lint
}  // namespace asqp
