// Golden tests for tools/asqp_lint: known-bad snippets in, exact
// file:line:col diagnostics out, plus suppression semantics, the v2
// symbol-aware rules (lock discipline, deadline-poll coverage, the
// fault-point registry), baseline partitioning, and the load-bearing
// checks against the real serving-layer headers. The linter library is
// linked directly so these tests exercise the same code path as the
// `lint` build target.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "asqp_lint/lint.h"

namespace asqp {
namespace lint {
namespace {

struct SourceFile {
  std::string path;
  std::string source;
};

/// Index every file, then lint `files[target]` against the shared index —
/// the same two-pass shape LintTree uses.
std::vector<Diagnostic> LintWith(const std::vector<SourceFile>& files,
                                 size_t target = 0) {
  AnalysisIndex index;
  for (const SourceFile& f : files) BuildIndex(f.path, f.source, &index);
  return LintSource(files[target].path, files[target].source, index);
}

/// Single-file convenience: declarations and uses travel together.
std::vector<Diagnostic> Lint(const std::string& path,
                             const std::string& source) {
  return LintWith({{path, source}});
}

std::vector<Diagnostic> OfRule(const std::vector<Diagnostic>& diags,
                               const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

/// The lock-discipline rule family (either direction).
std::vector<Diagnostic> GuardFamily(const std::vector<Diagnostic>& diags) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (d.rule == "asqp-guard-violation" || d.rule == "asqp-missing-guard") {
      out.push_back(d);
    }
  }
  return out;
}

std::vector<std::string> Render(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  out.reserve(diags.size());
  for (const Diagnostic& d : diags) out.push_back(d.ToString());
  return out;
}

std::string ReadRepoFile(const std::string& relative) {
  const std::string full = std::string(ASQP_SOURCE_DIR) + "/" + relative;
  std::ifstream in(full, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << full;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- index -----------------------------------------------------------------

TEST(LintIndexTest, CollectsStatusAndResultReturningFunctions) {
  AnalysisIndex index;
  BuildIndex("src/io/io.h",
             "util::Status Save(int x);\n"
             "Status Plain();\n"
             "util::Result<std::vector<int>> Load(const std::string& p);\n"
             "static Result<Foo> Make();\n"
             "void NotTracked();\n"
             "int AlsoNot(int);\n",
             &index);
  const auto& fns = index.functions.status_returning;
  EXPECT_EQ(fns.count("Save"), 1u);
  EXPECT_EQ(fns.count("Plain"), 1u);
  EXPECT_EQ(fns.count("Load"), 1u);
  EXPECT_EQ(fns.count("Make"), 1u);
  EXPECT_EQ(fns.count("NotTracked"), 0u);
  EXPECT_EQ(fns.count("AlsoNot"), 0u);
}

TEST(LintIndexTest, CollectsGuardAnnotationsAndFields) {
  AnalysisIndex index;
  BuildIndex("src/util/pool.h",
             "class Pool {\n"
             " public:\n"
             "  void Drain() ASQP_EXCLUDES(mu_);\n"
             " private:\n"
             "  std::mutex mu_;\n"
             "  size_t depth_ ASQP_GUARDED_BY(mu_) = 0;\n"
             "  size_t untracked_ = 0;\n"
             "};\n",
             &index);
  const auto& g = index.guards;
  ASSERT_EQ(g.guarded_fields.count("Pool"), 1u);
  EXPECT_EQ(g.guarded_fields.at("Pool").at("depth_"), "mu_");
  ASSERT_EQ(g.excluded_methods.count("Pool"), 1u);
  EXPECT_EQ(g.excluded_methods.at("Pool").at("Drain"), "mu_");
  EXPECT_EQ(g.fields.at("Pool").count("untracked_"), 1u);
  ASSERT_EQ(g.mutex_decls.size(), 1u);
  EXPECT_EQ(g.mutex_decls[0].cls, "Pool");
  EXPECT_EQ(g.mutex_decls[0].name, "mu_");
}

TEST(LintIndexTest, FaultRegistryIsOnlyReadFromTheRegistryHeader) {
  AnalysisIndex index;
  BuildIndex("src/exec/executor.cc",
             "void F() { Log(\"exec.deadline\"); }\n", &index);
  EXPECT_FALSE(index.has_fault_registry);
  BuildIndex("src/util/fault_points.h",
             "inline constexpr const char* kFaultPoints[] = {\n"
             "    \"exec.deadline\",\n"
             "};\n",
             &index);
  EXPECT_TRUE(index.has_fault_registry);
  EXPECT_EQ(index.fault_points.count("exec.deadline"), 1u);
}

// --- asqp-discarded-status -------------------------------------------------

TEST(LintDiscardTest, FlagsDiscardedCallWithExactLocation) {
  const std::string src =
      "util::Status Save(int x);\n"   // line 1
      "void F() {\n"                  // line 2
      "  Save(1);\n"                  // line 3, col 3
      "}\n";
  const auto diags = Lint("src/io/io.cc", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/io/io.cc");
  EXPECT_EQ(diags[0].line, 3u);
  EXPECT_EQ(diags[0].col, 3u);
  EXPECT_EQ(diags[0].rule, "asqp-discarded-status");
  EXPECT_EQ(Render(diags)[0].substr(0, 52),
            "src/io/io.cc:3:3: error: [asqp-discarded-status] res");
}

TEST(LintDiscardTest, FlagsMethodAndQualifiedCalls) {
  const std::string src =
      "struct W { util::Status Flush(); };\n"
      "util::Status io::Sync(int);\n"
      "void F(W* w, W& r) {\n"
      "  w->Flush();\n"    // line 4
      "  r.Flush();\n"     // line 5
      "  io::Sync(2);\n"   // line 6
      "}\n";
  const auto diags = Lint("src/io/io.cc", src);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].line, 4u);
  EXPECT_EQ(diags[1].line, 5u);
  EXPECT_EQ(diags[2].line, 6u);
  EXPECT_EQ(diags[2].col, 7u);  // the `Sync` token, not the `io` qualifier
}

TEST(LintDiscardTest, ConsumedOrSanctionedCallsAreClean) {
  const std::string src =
      "util::Status Save(int x);\n"
      "util::Status G() {\n"
      "  ASQP_RETURN_NOT_OK(Save(1));\n"       // ASQP_* macro: sanctioned
      "  util::Status s = Save(2);\n"          // assigned
      "  if (Save(3).ok()) { (void)Save(4); }\n"  // tested / void-cast
      "  return Save(5);\n"                    // returned
      "}\n";
  EXPECT_TRUE(Lint("src/io/io.cc", src).empty());
}

TEST(LintDiscardTest, MultiLineCallIsStillOneStatement) {
  const std::string src =
      "util::Status Save(int x, int y);\n"
      "void F() {\n"
      "  Save(1,\n"
      "       2);\n"
      "}\n";
  const auto diags = Lint("src/io/io.cc", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3u);
}

TEST(LintDiscardTest, SameFileVoidFunctionShadowsTreeWideStatusName) {
  // The PR-5 false positive, fixed at rule level: a tree-wide
  // Status-returning Database::AddTable must not flag bare calls to a
  // *local* void AddTable (the differential fuzzer's helper).
  AnalysisIndex index;
  BuildIndex("src/storage/database.h",
             "struct Database { util::Status AddTable(std::string n); };\n",
             &index);
  const std::string fuzz =
      "class Fuzzer {\n"
      " public:\n"
      "  void AddTable(const std::string& name);\n"
      "  void Setup() {\n"
      "    AddTable(\"t\");\n"  // local void helper: clean
      "  }\n"
      "};\n";
  BuildIndex("tests/fuzz.cc", fuzz, &index);
  EXPECT_TRUE(LintSource("tests/fuzz.cc", fuzz, index).empty());

  // A chained call still resolves to the Status-returning member.
  const std::string chained =
      "void G(Database* db) {\n"
      "  db->AddTable(\"t\");\n"
      "}\n";
  BuildIndex("tests/other.cc", chained, &index);
  const auto diags = LintSource("tests/other.cc", chained, index);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "asqp-discarded-status");
}

// --- suppression -----------------------------------------------------------

TEST(LintSuppressionTest, NolintWithMatchingRuleSuppresses) {
  const std::string src =
      "util::Status Save(int x);\n"
      "void F() {\n"
      "  Save(1);  // NOLINT(asqp-discarded-status)\n"
      "}\n";
  EXPECT_TRUE(Lint("src/io/io.cc", src).empty());
}

TEST(LintSuppressionTest, BareNolintSuppressesEverything) {
  const std::string src =
      "util::Status Save(int x);\n"
      "void F() {\n"
      "  Save(1);  // NOLINT\n"
      "}\n";
  EXPECT_TRUE(Lint("src/io/io.cc", src).empty());
}

TEST(LintSuppressionTest, WrongRuleNameDoesNotSuppress) {
  const std::string src =
      "util::Status Save(int x);\n"
      "void F() {\n"
      "  Save(1);  // NOLINT(asqp-naked-new)\n"
      "}\n";
  ASSERT_EQ(Lint("src/io/io.cc", src).size(), 1u);
}

TEST(LintSuppressionTest, NolintNextLineSuppressesTheLineBelow) {
  const std::string src =
      "util::Status Save(int x);\n"
      "void F() {\n"
      "  // NOLINTNEXTLINE(asqp-discarded-status)\n"
      "  Save(1);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/io/io.cc", src).empty());
}

// --- asqp-nondeterminism ---------------------------------------------------

TEST(LintNondeterminismTest, FlagsBannedGenerators) {
  const std::string src =
      "void F() {\n"
      "  int x = rand();\n"            // line 2
      "  std::random_device rd;\n"     // line 3
      "  std::mt19937 gen;\n"          // line 4: unseeded
      "  std::mt19937 ok(42);\n"       // seeded: allowed
      "  std::mt19937_64 also{7};\n"   // seeded: allowed
      "}\n";
  const auto diags = Lint("tests/foo_test.cc", src);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_EQ(diags[1].line, 3u);
  EXPECT_EQ(diags[2].line, 4u);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "asqp-nondeterminism");
}

TEST(LintNondeterminismTest, WallClockOnlyBannedInLibraryCode) {
  const std::string src =
      "void F() { auto t = std::chrono::system_clock::now(); }\n";
  EXPECT_EQ(Lint("src/core/model.cc", src).size(), 1u);
  EXPECT_TRUE(Lint("src/util/stopwatch.h", src).empty());
  EXPECT_TRUE(Lint("tests/foo_test.cc", src).empty());
  EXPECT_TRUE(Lint("bench/bench_fig2.cc", src).empty());
}

// --- asqp-naked-new --------------------------------------------------------

TEST(LintNakedNewTest, FlagsNewAndDeleteOutsideUtil) {
  const std::string src =
      "void F() {\n"
      "  int* p = new int(3);\n"  // line 2, col 12
      "  delete p;\n"             // line 3, col 3
      "}\n";
  const auto diags = Lint("src/exec/executor.cc", src);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "asqp-naked-new");
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_EQ(diags[0].col, 12u);
  EXPECT_EQ(diags[1].line, 3u);
  EXPECT_EQ(diags[1].col, 3u);
}

TEST(LintNakedNewTest, UtilAndDeletedFunctionsAreExempt) {
  const std::string alloc = "void F() { int* p = new int; delete p; }\n";
  EXPECT_TRUE(Lint("src/util/fault_injector.cc", alloc).empty());
  const std::string deleted =
      "struct T {\n"
      "  T(const T&) = delete;\n"
      "  T& operator=(const T&) = delete;\n"
      "};\n";
  EXPECT_TRUE(Lint("src/exec/executor.h", deleted).empty());
}

// --- asqp-catch-all --------------------------------------------------------

TEST(LintCatchAllTest, FlagsSwallowingHandler) {
  const std::string src =
      "void F() {\n"
      "  try { G(); } catch (...) {\n"  // line 2, col 16
      "  }\n"
      "}\n";
  const auto diags = Lint("src/exec/executor.cc", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "asqp-catch-all");
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_EQ(diags[0].col, 16u);
}

TEST(LintCatchAllTest, RethrowOrConvertIsClean) {
  EXPECT_TRUE(Lint("src/a/b.cc",
                   "void F() { try { G(); } catch (...) { throw; } }\n")
                  .empty());
  EXPECT_TRUE(
      Lint("src/a/b.cc",
           "void F() {\n"
           "  try { G(); } catch (...) { e = std::current_exception(); }\n"
           "}\n")
          .empty());
  EXPECT_TRUE(
      Lint("src/a/b.cc",
           "util::Status F() {\n"
           "  try { G(); } catch (...) {\n"
           "    return util::Status::ExecutionError(\"boom\");\n"
           "  }\n"
           "  return util::Status::OK();\n"
           "}\n")
          .empty());
}

// --- asqp-unsynchronized-shared-write --------------------------------------

TEST(LintSharedWriteTest, FlagsByRefMutationsInsideParallelLambda) {
  const std::string src =
      "void F(util::ThreadPool* pool) {\n"
      "  size_t hits = 0;\n"
      "  std::vector<int> rows;\n"
      "  pool->ParallelFor(100, [&](size_t i) {\n"
      "    hits += 1;\n"            // line 5, col 5: compound assignment
      "    rows.push_back(1);\n"    // line 6, col 5: mutating method
      "  });\n"
      "}\n";
  const auto diags = Lint("src/exec/executor.cc", src);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "asqp-unsynchronized-shared-write");
  EXPECT_EQ(diags[0].line, 5u);
  EXPECT_EQ(diags[0].col, 5u);
  EXPECT_NE(diags[0].message.find("'hits'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("ParallelFor"), std::string::npos);
  EXPECT_EQ(diags[1].line, 6u);
  EXPECT_NE(diags[1].message.find("'rows'"), std::string::npos);
}

TEST(LintSharedWriteTest, FlagsExplicitCaptureAssignIncrementAndMember) {
  const std::string src =
      "void F(util::ThreadPool* pool) {\n"
      "  int total = 0;\n"
      "  Stats stats;\n"
      "  size_t n = 0;\n"
      "  pool->ParallelForChunked(100, 10,\n"
      "      [&total, &stats, &n](size_t c, size_t b, size_t e) {\n"
      "        total = 1;\n"          // line 7: direct assignment
      "        stats.count = 2;\n"    // line 8: member assignment
      "        ++n;\n"                // line 9: increment
      "        return Status::OK();\n"
      "      });\n"
      "}\n";
  const auto diags = Lint("src/exec/executor.cc", src);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].line, 7u);
  EXPECT_NE(diags[0].message.find("'total'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("ParallelForChunked"), std::string::npos);
  EXPECT_EQ(diags[1].line, 8u);
  EXPECT_NE(diags[1].message.find("'stats'"), std::string::npos);
  EXPECT_EQ(diags[2].line, 9u);
  EXPECT_NE(diags[2].message.find("'n'"), std::string::npos);
}

TEST(LintSharedWriteTest, PerChunkSlotAtomicsAndLocalsAreClean) {
  const std::string src =
      "void F(util::ThreadPool* pool) {\n"
      "  std::vector<TupleSet> parts(10);\n"
      "  std::atomic<size_t> total{0};\n"
      "  pool->ParallelForChunked(100, 10,\n"
      "      [&](size_t chunk, size_t begin, size_t end) {\n"
      "        TupleSet local;\n"                   // body-local: private
      "        local.num_tables = 3;\n"
      "        local.Append(nullptr);\n"
      "        total.fetch_add(local.size());\n"    // atomic method
      "        parts[chunk] = std::move(local);\n"  // per-chunk slot
      "        return Status::OK();\n"
      "      });\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", src).empty());
}

TEST(LintSharedWriteTest, MutexGuardedBodyAndReadsAreClean) {
  const std::string guarded =
      "void F(util::ThreadPool* pool, std::vector<int>& out) {\n"
      "  std::mutex mu;\n"
      "  pool->ParallelFor(100, [&](size_t i) {\n"
      "    std::lock_guard<std::mutex> lock(mu);\n"
      "    out.push_back(1);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", guarded).empty());
  const std::string reads =
      "void F(util::ThreadPool* pool, const std::vector<int>& in) {\n"
      "  size_t limit = in.size();\n"
      "  pool->ParallelFor(100, [&](size_t i) {\n"
      "    if (i == limit || in[i] >= 3) Use(in[i], limit);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", reads).empty());
}

TEST(LintSharedWriteTest, LambdaOutsideParallelEntryIsNotFlagged) {
  const std::string src =
      "void F() {\n"
      "  int count = 0;\n"
      "  auto bump = [&count]() { count += 1; };\n"
      "  std::for_each(v.begin(), v.end(), [&](int x) { count += x; });\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", src).empty());
}

TEST(LintSharedWriteTest, SingleItemLiteralRunsOnCallerAndIsExempt) {
  // The second PR-5 false positive, fixed at rule level: ParallelFor(0|1,
  // ...) never enqueues helper tasks, so by-ref writes are single-threaded.
  const std::string src =
      "void F(util::ThreadPool* pool) {\n"
      "  size_t seen = 0;\n"
      "  pool->ParallelFor(1, [&](size_t i) { seen = i; });\n"
      "  pool->ParallelFor(0, [&](size_t i) { seen = i; });\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", src).empty());

  const std::string many =
      "void F(util::ThreadPool* pool) {\n"
      "  size_t seen = 0;\n"
      "  pool->ParallelFor(100, [&](size_t i) { seen = i; });\n"
      "}\n";
  ASSERT_EQ(Lint("src/exec/executor.cc", many).size(), 1u);
}

TEST(LintSharedWriteTest, NolintSuppressesSharedWrite) {
  const std::string src =
      "void F(util::ThreadPool* pool) {\n"
      "  size_t hits = 0;\n"
      "  pool->ParallelFor(100, [&](size_t i) {\n"
      "    hits += 1;  // NOLINT(asqp-unsynchronized-shared-write)\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", src).empty());
}

// --- asqp-guard-violation --------------------------------------------------

const char kCounterHeader[] =
    "class Counter {\n"
    " public:\n"
    "  void Bump();\n"
    "  void Locked();\n"
    " private:\n"
    "  mutable std::mutex mu_;\n"
    "  size_t count_ ASQP_GUARDED_BY(mu_) = 0;\n"
    "};\n";

TEST(LintGuardTest, FlagsUnlockedAccessToGuardedField) {
  const std::string impl =
      "void Counter::Bump() {\n"
      "  count_ += 1;\n"  // line 2, col 3
      "}\n";
  const auto diags = LintWith(
      {{"src/util/counter.cc", impl}, {"src/util/counter.h", kCounterHeader}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "asqp-guard-violation");
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_EQ(diags[0].col, 3u);
  EXPECT_NE(diags[0].message.find("'count_'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("mu_"), std::string::npos);
}

TEST(LintGuardTest, LockScopesOnTheNamedMutexAreClean) {
  const std::string impl =
      "void Counter::Bump() {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  count_ += 1;\n"
      "}\n"
      "void Counter::Locked() {\n"
      "  std::unique_lock<std::mutex> lock(mu_);\n"
      "  count_ = 0;\n"
      "}\n";
  EXPECT_TRUE(LintWith({{"src/util/counter.cc", impl},
                        {"src/util/counter.h", kCounterHeader}})
                  .empty());
}

TEST(LintGuardTest, DeferredLockAndWrongMutexDoNotCount) {
  const std::string impl =
      "void Counter::Bump() {\n"
      "  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);\n"
      "  count_ += 1;\n"  // deferred: not held
      "}\n"
      "void Counter::Locked() {\n"
      "  std::lock_guard<std::mutex> lock(other_mu_);\n"
      "  count_ += 1;\n"  // wrong mutex
      "}\n";
  const auto diags = LintWith(
      {{"src/util/counter.cc", impl}, {"src/util/counter.h", kCounterHeader}});
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].line, 3u);
  EXPECT_EQ(diags[1].line, 7u);
}

TEST(LintGuardTest, LockReleasedAtScopeExit) {
  const std::string impl =
      "void Counter::Bump() {\n"
      "  {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    count_ += 1;\n"  // clean: inside the lock scope
      "  }\n"
      "  count_ += 1;\n"    // line 6: the guard is gone
      "}\n";
  const auto diags = LintWith(
      {{"src/util/counter.cc", impl}, {"src/util/counter.h", kCounterHeader}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 6u);
}

TEST(LintGuardTest, SharedMutexReaderScopeCountsAsHeld) {
  const std::string src =
      "class Engine {\n"
      " public:\n"
      "  void Read();\n"
      " private:\n"
      "  std::shared_mutex model_mu_;\n"
      "  int* model_ ASQP_GUARDED_BY(model_mu_) = nullptr;\n"
      "};\n"
      "void Engine::Read() {\n"
      "  std::shared_lock<std::shared_mutex> reader(model_mu_);\n"
      "  Use(model_);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/serve/engine.cc", src).empty());
}

TEST(LintGuardTest, NolintSuppressesGuardViolation) {
  const std::string impl =
      "void Counter::Bump() {\n"
      "  count_ += 1;  // NOLINT(asqp-guard-violation)\n"
      "}\n";
  EXPECT_TRUE(LintWith({{"src/util/counter.cc", impl},
                        {"src/util/counter.h", kCounterHeader}})
                  .empty());
}

TEST(LintGuardTest, ExcludesMethodCalledUnderItsMutexIsADeadlock) {
  const std::string src =
      "class Pool {\n"
      " public:\n"
      "  void Drain() ASQP_EXCLUDES(mu_);\n"
      "  void Tickle();\n"
      "  void Fine();\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  size_t depth_ ASQP_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "void Pool::Tickle() {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  Drain();\n"  // line 12: Drain re-acquires mu_ -> self-deadlock
      "}\n"
      "void Pool::Fine() {\n"
      "  Drain();\n"  // clean: mu_ not held here
      "}\n";
  const auto diags = Lint("src/util/pool.cc", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "asqp-guard-violation");
  EXPECT_EQ(diags[0].line, 12u);
  EXPECT_NE(diags[0].message.find("Drain"), std::string::npos);
}

// --- asqp-missing-guard ----------------------------------------------------

TEST(LintMissingGuardTest, UnannotatedFieldWrittenUnderLockIsFlagged) {
  const std::string src =
      "class Box {\n"
      " public:\n"
      "  void Put();\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int a_ ASQP_GUARDED_BY(mu_) = 0;\n"
      "  int b_ = 0;\n"
      "};\n"
      "void Box::Put() {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  a_ = 1;\n"
      "  b_ = 2;\n"  // line 12: written under mu_ but not annotated
      "}\n";
  const auto diags = Lint("src/util/box.cc", src);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "asqp-missing-guard");
  EXPECT_EQ(diags[0].line, 12u);
  EXPECT_NE(diags[0].message.find("'b_'"), std::string::npos);

  // Completeness is a src/-only policy: test fixtures stay unannotated.
  EXPECT_TRUE(Lint("tests/box_test.cc", src).empty());
}

TEST(LintMissingGuardTest, MutexWithNoDeclaredProtocolFailsCoverage) {
  AnalysisIndex bare;
  BuildIndex("src/util/bare.h",
             "class Bare {\n"
             "  std::mutex mu_;\n"  // line 2: no annotation anywhere
             "  int v_ = 0;\n"
             "};\n",
             &bare);
  std::vector<Diagnostic> diags;
  CheckMutexCoverage(bare, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "asqp-missing-guard");
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_NE(diags[0].message.find("'mu_'"), std::string::npos);

  // One annotation on the mutex (field or EXCLUDES) satisfies coverage.
  AnalysisIndex covered;
  BuildIndex("src/util/covered.h",
             "class Covered {\n"
             "  std::mutex mu_;\n"
             "  int v_ ASQP_GUARDED_BY(mu_) = 0;\n"
             "};\n",
             &covered);
  diags.clear();
  CheckMutexCoverage(covered, &diags);
  EXPECT_TRUE(diags.empty());

  // Coverage is src/-only: a test fixture's mutex needs no protocol.
  AnalysisIndex test_fixture;
  BuildIndex("tests/bare_test.cc",
             "class Bare {\n"
             "  std::mutex mu_;\n"
             "};\n",
             &test_fixture);
  diags.clear();
  CheckMutexCoverage(test_fixture, &diags);
  EXPECT_TRUE(diags.empty());
}

// --- asqp-unpolled-loop ----------------------------------------------------

const char kLongLoop[] =
    "void Train() {\n"
    "  for (size_t i = 0; i < n; ++i) {\n"  // line 2: 9 statements, no poll
    "    a = 1; b = 2; c = 3;\n"
    "    d = 4; e = 5; f = 6;\n"
    "    g = 7; h = 8; k = 9;\n"
    "  }\n"
    "}\n";

TEST(LintUnpolledLoopTest, FlagsLongLoopWithoutDeadlinePoll) {
  const auto diags = Lint("src/aqp/trainer.cc", kLongLoop);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "asqp-unpolled-loop");
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_NE(diags[0].message.find("9 statements"), std::string::npos);

  // Same loop in src/exec/ is also in scope...
  EXPECT_EQ(Lint("src/exec/merge.cc", kLongLoop).size(), 1u);
  // ...but the rule is scoped to the deadline-bearing subsystems.
  EXPECT_TRUE(Lint("src/core/model.cc", kLongLoop).empty());
  EXPECT_TRUE(Lint("tests/trainer_test.cc", kLongLoop).empty());
}

TEST(LintUnpolledLoopTest, PolledOrShortLoopsAreClean) {
  const std::string polled =
      "void Train(util::ExecContext& ctx) {\n"
      "  for (size_t i = 0; i < n; ++i) {\n"
      "    ASQP_RETURN_NOT_OK(ctx.Check());\n"
      "    a = 1; b = 2; c = 3;\n"
      "    d = 4; e = 5; f = 6;\n"
      "    g = 7; h = 8; k = 9;\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(Lint("src/aqp/trainer.cc", polled).empty());

  const std::string ticker =
      "void Merge(util::DeadlineTicker& ticker) {\n"
      "  while (More()) {\n"
      "    if (ticker.Tick()) break;\n"
      "    a = 1; b = 2; c = 3;\n"
      "    d = 4; e = 5; f = 6;\n"
      "    g = 7; h = 8;\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/merge.cc", ticker).empty());

  const std::string short_loop =
      "void Train() {\n"
      "  for (size_t i = 0; i < n; ++i) {\n"
      "    a = 1; b = 2; c = 3; d = 4;\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(Lint("src/aqp/trainer.cc", short_loop).empty());
}

TEST(LintUnpolledLoopTest, NestedLoopsAreMeasuredIndependently) {
  const std::string src =
      "void Train() {\n"
      "  for (size_t e = 0; e < epochs; ++e) {\n"  // outer: also unpolled
      "    for (size_t i = 0; i < n; ++i) {\n"     // line 3: inner
      "      a = 1; b = 2; c = 3;\n"
      "      d = 4; e2 = 5; f = 6;\n"
      "      g = 7; h = 8; k = 9;\n"
      "    }\n"
      "  }\n"
      "}\n";
  const auto diags = Lint("src/aqp/trainer.cc", src);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_EQ(diags[1].line, 3u);
}

TEST(LintUnpolledLoopTest, NolintOnTheLoopLineSuppresses) {
  const std::string src =
      "void Train() {\n"
      "  // NOLINTNEXTLINE(asqp-unpolled-loop): epoch loop, bounded offline\n"
      "  for (size_t i = 0; i < n; ++i) {\n"
      "    a = 1; b = 2; c = 3;\n"
      "    d = 4; e = 5; f = 6;\n"
      "    g = 7; h = 8; k = 9;\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(Lint("src/aqp/trainer.cc", src).empty());
}

// --- asqp-unregistered-fault-point -----------------------------------------

const char kRegistry[] =
    "inline constexpr const char* kFaultPoints[] = {\n"
    "    \"exec.deadline\",\n"
    "};\n";

TEST(LintFaultPointTest, UnregisteredLiteralIsFlagged) {
  const std::string src =
      "void F() {\n"
      "  if (ASQP_FAULT_POINT(\"bogus.point\")) { return; }\n"  // line 2
      "}\n";
  const auto diags = LintWith(
      {{"src/exec/executor.cc", src}, {"src/util/fault_points.h", kRegistry}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "asqp-unregistered-fault-point");
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_NE(diags[0].message.find("bogus.point"), std::string::npos);
}

TEST(LintFaultPointTest, RegisteredLiteralAndTestHarnessesAreClean) {
  const std::string registered =
      "void F() {\n"
      "  if (ASQP_FAULT_POINT(\"exec.deadline\")) { return; }\n"
      "}\n";
  EXPECT_TRUE(LintWith({{"src/exec/executor.cc", registered},
                        {"src/util/fault_points.h", kRegistry}})
                  .empty());

  // The injector's own tests arm synthetic names on purpose; the registry
  // cross-check (tests/fault_points_test.cc) covers tests from the other
  // direction.
  const std::string synthetic =
      "void F() {\n"
      "  if (ASQP_FAULT_POINT(\"resilience.test.point\")) { return; }\n"
      "}\n";
  EXPECT_TRUE(LintWith({{"tests/resilience_test.cc", synthetic},
                        {"src/util/fault_points.h", kRegistry}})
                  .empty());
}

TEST(LintFaultPointTest, RuleIsInertWithoutTheRegistryHeader) {
  // Linting a lone file (no registry indexed) must not flag every literal.
  const std::string src =
      "void F() {\n"
      "  if (ASQP_FAULT_POINT(\"anything.at.all\")) { return; }\n"
      "}\n";
  EXPECT_TRUE(Lint("src/exec/executor.cc", src).empty());
}

// --- load-bearing checks against the real serving-layer headers ------------

TEST(LintLoadBearingTest, AnswerCacheAnnotationsAreEachLoadBearing) {
  const std::string header = ReadRepoFile("src/serve/answer_cache.h");
  const std::string impl = ReadRepoFile("src/serve/answer_cache.cc");

  // Intact annotations: the real implementation is guard-clean.
  EXPECT_TRUE(GuardFamily(LintWith({{"src/serve/answer_cache.cc", impl},
                                    {"src/serve/answer_cache.h", header}}))
                  .empty());

  // Removing ANY single ASQP_GUARDED_BY(mu) from the Shard turns at least
  // one real access in answer_cache.cc into a finding.
  const std::string kAnnotation = "ASQP_GUARDED_BY(mu)";
  size_t stripped_count = 0;
  for (size_t pos = header.find(kAnnotation); pos != std::string::npos;
       pos = header.find(kAnnotation, pos + 1)) {
    std::string stripped = header;
    stripped.erase(pos, kAnnotation.size());
    const auto diags =
        GuardFamily(LintWith({{"src/serve/answer_cache.cc", impl},
                              {"src/serve/answer_cache.h", stripped}}));
    EXPECT_FALSE(diags.empty())
        << "stripping annotation #" << stripped_count << " went undetected";
    ++stripped_count;
  }
  EXPECT_GE(stripped_count, 9u) << "Shard annotations went missing";
}

TEST(LintLoadBearingTest, ServeEngineModelAnnotationIsLoadBearing) {
  const std::string header = ReadRepoFile("src/serve/serve_engine.h");
  const std::string kAnnotation = "ASQP_GUARDED_BY(model_mu_)";
  ASSERT_NE(header.find(kAnnotation), std::string::npos);

  AnalysisIndex intact;
  BuildIndex("src/serve/serve_engine.h", header, &intact);
  std::vector<Diagnostic> diags;
  CheckMutexCoverage(intact, &diags);
  EXPECT_TRUE(diags.empty());

  // model_ carries the only model_mu_ annotation: stripping it leaves the
  // engine's reader-writer mutex with no declared protocol at all.
  std::string stripped = header;
  stripped.erase(stripped.find(kAnnotation), kAnnotation.size());
  AnalysisIndex without;
  BuildIndex("src/serve/serve_engine.h", stripped, &without);
  diags.clear();
  CheckMutexCoverage(without, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "asqp-missing-guard");
  EXPECT_NE(diags[0].message.find("'model_mu_'"), std::string::npos);
}

TEST(LintLoadBearingTest, DeletingARegistryEntryFailsTheUsingFile) {
  const std::string registry = ReadRepoFile("src/util/fault_points.h");
  const std::string executor = ReadRepoFile("src/exec/executor.cc");
  ASSERT_NE(registry.find("\"exec.join.alloc\""), std::string::npos);

  const auto intact =
      OfRule(LintWith({{"src/exec/executor.cc", executor},
                       {"src/util/fault_points.h", registry}}),
             "asqp-unregistered-fault-point");
  EXPECT_TRUE(intact.empty());

  std::string stripped = registry;
  const size_t pos = stripped.find("\"exec.join.alloc\",");
  stripped.erase(pos, std::string("\"exec.join.alloc\",").size());
  const auto diags =
      OfRule(LintWith({{"src/exec/executor.cc", executor},
                       {"src/util/fault_points.h", stripped}}),
             "asqp-unregistered-fault-point");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("exec.join.alloc"), std::string::npos);
}

// --- file collection -------------------------------------------------------

TEST(LintFileCollectionTest, CompileCommandsClosureCoversEverySrcTu) {
  namespace fs = std::filesystem;
  const std::string root = ASQP_SOURCE_DIR;
  const std::string db = std::string(ASQP_BINARY_DIR) + "/compile_commands.json";
  ASSERT_TRUE(fs::exists(db)) << db;

  const std::vector<std::string> files = CollectLintFiles(root, db);
  const std::unordered_set<std::string> set(files.begin(), files.end());

  // Every translation unit under src/ must be linted: new subsystems are
  // covered the moment they join the build.
  size_t tus = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root + "/src")) {
    if (!entry.is_regular_file() || entry.path().extension() != ".cc") {
      continue;
    }
    const std::string rel =
        fs::relative(entry.path(), root).generic_string();
    EXPECT_EQ(set.count(rel), 1u) << rel << " missing from the lint set";
    ++tus;
  }
  EXPECT_GT(tus, 20u);

  // The include closure pulls in headers (annotations live in headers)
  // and the tools' own sources.
  EXPECT_EQ(set.count("src/serve/serve_engine.h"), 1u);
  EXPECT_EQ(set.count("src/util/sync.h"), 1u);
  EXPECT_EQ(set.count("src/util/fault_points.h"), 1u);
  EXPECT_EQ(set.count("tools/asqp_lint/lint.cc"), 1u);
}

TEST(LintFileCollectionTest, DirectoryWalkFallbackStillCoversSrc) {
  const std::vector<std::string> files =
      CollectLintFiles(ASQP_SOURCE_DIR, "/nonexistent/compile_commands.json");
  const std::unordered_set<std::string> set(files.begin(), files.end());
  EXPECT_EQ(set.count("src/serve/serve_engine.cc"), 1u);
  EXPECT_EQ(set.count("src/util/fault_points.h"), 1u);
  EXPECT_EQ(set.count("tests/lint_test.cc"), 1u);
}

// --- baseline & JSON -------------------------------------------------------

Diagnostic MakeDiag(const std::string& file, size_t line,
                    const std::string& rule, const std::string& message) {
  Diagnostic d;
  d.file = file;
  d.line = line;
  d.col = 3;
  d.rule = rule;
  d.message = message;
  return d;
}

TEST(LintBaselineTest, AbsorbsByKeyWithMultiplicityIgnoringLines) {
  const Diagnostic a =
      MakeDiag("src/aqp/vae.cc", 10, "asqp-unpolled-loop", "loop ...");
  const Diagnostic a_moved =
      MakeDiag("src/aqp/vae.cc", 99, "asqp-unpolled-loop", "loop ...");
  const Diagnostic fresh =
      MakeDiag("src/aqp/vae.cc", 20, "asqp-unpolled-loop", "other loop ...");

  Baseline baseline;
  baseline.entries[BaselineKey(a)] = 1;

  std::vector<Diagnostic> grandfathered, remaining;
  // The baselined finding absorbs one occurrence even after it moved to a
  // different line; the second occurrence of the same key and the novel
  // message stay fresh.
  PartitionAgainstBaseline({a_moved, a, fresh}, baseline, &grandfathered,
                           &remaining);
  ASSERT_EQ(grandfathered.size(), 1u);
  ASSERT_EQ(remaining.size(), 2u);
}

TEST(LintBaselineTest, SerializedBaselineRoundTripsThroughPartition) {
  const Diagnostic a =
      MakeDiag("src/aqp/vae.cc", 10, "asqp-unpolled-loop", "loop A");
  const Diagnostic b =
      MakeDiag("src/exec/executor.cc", 5, "asqp-unpolled-loop", "loop B");
  const std::string serialized = SerializeBaseline({a, b, a});
  EXPECT_NE(serialized.find("src/aqp/vae.cc\tasqp-unpolled-loop\tloop A"),
            std::string::npos);

  const std::string path =
      (std::filesystem::temp_directory_path() / "asqp_lint_baseline_rt.txt")
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << serialized;
  }
  Baseline baseline;
  ASSERT_TRUE(LoadBaseline(path, &baseline));
  std::filesystem::remove(path);

  std::vector<Diagnostic> grandfathered, fresh;
  PartitionAgainstBaseline({a, a, b}, baseline, &grandfathered, &fresh);
  EXPECT_EQ(grandfathered.size(), 3u);  // multiplicity 2 for `a` preserved
  EXPECT_TRUE(fresh.empty());

  Baseline missing;
  EXPECT_FALSE(LoadBaseline("/nonexistent/baseline.txt", &missing));
}

TEST(LintJsonTest, ReportCarriesStatusAndCounts) {
  const Diagnostic fresh =
      MakeDiag("src/a.cc", 1, "asqp-naked-new", "say \"no\"");
  const Diagnostic old =
      MakeDiag("src/b.cc", 2, "asqp-unpolled-loop", "loop");
  const std::string json = DiagnosticsToJson({fresh}, {old});
  EXPECT_NE(json.find("\"status\":\"new\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"grandfathered\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"new\":1"), std::string::npos);
  EXPECT_NE(json.find("\"grandfathered\":1"), std::string::npos);
  EXPECT_NE(json.find("say \\\"no\\\""), std::string::npos);  // escaping
}

// --- lexical robustness ----------------------------------------------------

TEST(LintLexerTest, IgnoresCommentsStringsAndPreprocessor) {
  const std::string src =
      "#include <random>  // has random_device in the path\n"
      "#define MAKE_RNG() std::random_device{}\n"
      "const char* s = \"rand() system_clock new delete\";\n"
      "// rand() in a comment\n"
      "/* new delete catch (...) { } */\n"
      "char c = 'r';\n";
  EXPECT_TRUE(Lint("src/core/model.cc", src).empty());
}

TEST(LintLexerTest, RawStringsDoNotLeakTokens) {
  const std::string src =
      "const char* sql = R\"(SELECT rand() FROM t; new delete)\";\n";
  EXPECT_TRUE(Lint("src/core/model.cc", src).empty());
}

TEST(LintLexerTest, DigitSeparatorsDoNotSplitTokens) {
  const std::string src = "constexpr long kBig = 1'000'000;\n";
  EXPECT_TRUE(Lint("src/core/model.cc", src).empty());
}

}  // namespace
}  // namespace lint
}  // namespace asqp
