#include <gtest/gtest.h>

#include "metric/diversity.h"
#include "metric/relative_error.h"
#include "metric/score.h"
#include "metric/workload.h"
#include "sql/parser.h"
#include "tests/testing.h"

namespace asqp {
namespace metric {
namespace {

TEST(WorkloadTest, FromSqlAndNormalize) {
  ASSERT_OK_AND_ASSIGN(
      Workload w, Workload::FromSql({"SELECT * FROM movies",
                                     "SELECT * FROM roles WHERE salary > 10"}));
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.query(0).weight, 0.5);
  EXPECT_DOUBLE_EQ(w.query(1).weight, 0.5);
}

TEST(WorkloadTest, FromSqlPropagatesParseErrors) {
  EXPECT_FALSE(Workload::FromSql({"SELECT FROM"}).ok());
}

TEST(WorkloadTest, NormalizeHandlesZeroWeights) {
  Workload w;
  ASSERT_OK_AND_ASSIGN(auto stmt, sql::Parse("SELECT * FROM t"));
  w.Add(stmt.Clone(), 0.0);
  w.Add(stmt.Clone(), 0.0);
  w.NormalizeWeights();
  EXPECT_DOUBLE_EQ(w.query(0).weight, 0.5);
}

TEST(WorkloadTest, TrainTestSplitPartitions) {
  Workload w;
  ASSERT_OK_AND_ASSIGN(auto stmt, sql::Parse("SELECT * FROM t"));
  for (int i = 0; i < 10; ++i) w.Add(stmt.Clone());
  w.NormalizeWeights();
  util::Rng rng(5);
  auto [train, test] = w.TrainTestSplit(0.7, &rng);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
  double train_sum = 0.0;
  for (const auto& q : train.queries()) train_sum += q.weight;
  EXPECT_NEAR(train_sum, 1.0, 1e-9);
}

TEST(WorkloadTest, TruncateRenormalizes) {
  Workload w;
  ASSERT_OK_AND_ASSIGN(auto stmt, sql::Parse("SELECT * FROM t"));
  for (int i = 0; i < 4; ++i) w.Add(stmt.Clone());
  w.NormalizeWeights();
  Workload t = w.Truncate(2);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.query(0).weight, 0.5);
  EXPECT_EQ(w.Truncate(100).size(), 4u);
}

TEST(StripAggregatesTest, AggToSpj) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      sql::Parse("SELECT year, COUNT(*), AVG(rating) FROM movies "
                 "WHERE rating > 5 GROUP BY year"));
  sql::SelectStatement spj = StripAggregates(stmt);
  EXPECT_FALSE(spj.HasAggregates());
  EXPECT_TRUE(spj.group_by.empty());
  // year (select), rating (from AVG), year (from GROUP BY) stay observable.
  EXPECT_EQ(spj.items.size(), 3u);
  ASSERT_NE(spj.where, nullptr);  // WHERE survives
}

TEST(StripAggregatesTest, HavingDroppedWithAggregates) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      sql::Parse("SELECT actor, COUNT(*) AS c FROM roles GROUP BY actor "
                 "HAVING c > 2 ORDER BY c DESC"));
  sql::SelectStatement spj = StripAggregates(stmt);
  EXPECT_EQ(spj.having, nullptr);
  EXPECT_TRUE(spj.order_by.empty());
  EXPECT_FALSE(spj.HasAggregates());
}

TEST(StripAggregatesTest, CountDistinctKeepsBareColumn) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       sql::Parse("SELECT COUNT(DISTINCT actor) FROM roles"));
  sql::SelectStatement spj = StripAggregates(stmt);
  ASSERT_EQ(spj.items.size(), 1u);
  EXPECT_EQ(spj.items[0].agg, sql::AggFunc::kNone);
  ASSERT_NE(spj.items[0].expr, nullptr);
  EXPECT_EQ(spj.items[0].expr->column, "actor");
}

TEST(StripAggregatesTest, CountStarOnlyBecomesStar) {
  ASSERT_OK_AND_ASSIGN(auto stmt, sql::Parse("SELECT COUNT(*) FROM movies"));
  sql::SelectStatement spj = StripAggregates(stmt);
  ASSERT_EQ(spj.items.size(), 1u);
  EXPECT_TRUE(spj.items[0].star);
}

TEST(StripAggregatesTest, SpjUnchanged) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       sql::Parse("SELECT a FROM t WHERE a > 1 LIMIT 3"));
  sql::SelectStatement out = StripAggregates(stmt);
  EXPECT_EQ(out.ToSql(), stmt.ToSql());
}

class ScoreTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = testing::MakeTinyMovieDb(); }
  std::shared_ptr<storage::Database> db_;
};

TEST_F(ScoreTest, FullSubsetScoresOne) {
  storage::ApproximationSet all;
  for (const auto& name : db_->TableNames()) {
    ASSERT_OK_AND_ASSIGN(auto t, db_->GetTable(name));
    for (uint32_t r = 0; r < t->num_rows(); ++r) all.Add(name, r);
  }
  all.Seal();
  ASSERT_OK_AND_ASSIGN(
      Workload w,
      Workload::FromSql(
          {"SELECT * FROM movies WHERE year >= 2010",
           "SELECT m.title, r.actor FROM movies m, roles r WHERE m.id = "
           "r.movie_id"}));
  ScoreEvaluator eval(db_.get(), ScoreOptions{.frame_size = 50});
  ASSERT_OK_AND_ASSIGN(double score, eval.Score(w, all));
  EXPECT_DOUBLE_EQ(score, 1.0);
}

TEST_F(ScoreTest, EmptySubsetScoresZero) {
  storage::ApproximationSet empty;
  empty.Seal();
  ASSERT_OK_AND_ASSIGN(Workload w, Workload::FromSql({"SELECT * FROM movies"}));
  ScoreEvaluator eval(db_.get());
  ASSERT_OK_AND_ASSIGN(double score, eval.Score(w, empty));
  EXPECT_DOUBLE_EQ(score, 0.0);
}

TEST_F(ScoreTest, PartialCoverage) {
  // Subset holds 2 of 8 movies; query returns all movies; F large.
  storage::ApproximationSet subset;
  subset.Add("movies", 0);
  subset.Add("movies", 1);
  subset.Seal();
  ASSERT_OK_AND_ASSIGN(Workload w, Workload::FromSql({"SELECT * FROM movies"}));
  ScoreEvaluator eval(db_.get(), ScoreOptions{.frame_size = 50});
  ASSERT_OK_AND_ASSIGN(double score, eval.Score(w, subset));
  EXPECT_NEAR(score, 2.0 / 8.0, 1e-9);
}

TEST_F(ScoreTest, FrameSizeCapsTheDenominator) {
  // F=2: two covered tuples already saturate the query's score.
  storage::ApproximationSet subset;
  subset.Add("movies", 0);
  subset.Add("movies", 1);
  subset.Seal();
  ASSERT_OK_AND_ASSIGN(Workload w, Workload::FromSql({"SELECT * FROM movies"}));
  ScoreEvaluator eval(db_.get(), ScoreOptions{.frame_size = 2});
  ASSERT_OK_AND_ASSIGN(double score, eval.Score(w, subset));
  EXPECT_DOUBLE_EQ(score, 1.0);
}

TEST_F(ScoreTest, EmptyFullResultCountsAsCovered) {
  storage::ApproximationSet empty;
  empty.Seal();
  ASSERT_OK_AND_ASSIGN(
      Workload w, Workload::FromSql({"SELECT * FROM movies WHERE year = 1800"}));
  ScoreEvaluator eval(db_.get());
  ASSERT_OK_AND_ASSIGN(double score, eval.Score(w, empty));
  EXPECT_DOUBLE_EQ(score, 1.0);
}

TEST_F(ScoreTest, WeightsSteerTheScore) {
  storage::ApproximationSet subset;
  subset.Add("movies", 2);  // gamma, year 2010
  subset.Seal();
  Workload w;
  ASSERT_OK_AND_ASSIGN(auto covered,
                       sql::Parse("SELECT * FROM movies WHERE id = 3"));
  ASSERT_OK_AND_ASSIGN(auto uncovered,
                       sql::Parse("SELECT * FROM movies WHERE id = 5"));
  w.Add(std::move(covered), 0.9);
  w.Add(std::move(uncovered), 0.1);
  w.NormalizeWeights();
  ScoreEvaluator eval(db_.get());
  ASSERT_OK_AND_ASSIGN(double score, eval.Score(w, subset));
  EXPECT_NEAR(score, 0.9, 1e-9);
}

TEST_F(ScoreTest, JoinQueryNeedsBothSides) {
  // Subset holds movie 1 but not its roles: the join yields nothing.
  storage::ApproximationSet subset;
  subset.Add("movies", 0);
  subset.Seal();
  ASSERT_OK_AND_ASSIGN(
      Workload w,
      Workload::FromSql({"SELECT m.title, r.actor FROM movies m, roles r "
                         "WHERE m.id = r.movie_id AND m.id = 1"}));
  ScoreEvaluator eval(db_.get());
  ASSERT_OK_AND_ASSIGN(double score, eval.Score(w, subset));
  EXPECT_DOUBLE_EQ(score, 0.0);
}

TEST(DiversityTest, IdenticalRowsZeroDistance) {
  exec::ResultSet rs({"a", "b"});
  rs.AddRow({storage::Value(int64_t{1}), storage::Value(int64_t{2})});
  rs.AddRow({storage::Value(int64_t{1}), storage::Value(int64_t{2})});
  EXPECT_DOUBLE_EQ(ResultDiversity(rs), 0.0);
}

TEST(DiversityTest, DisjointRowsFullDistance) {
  exec::ResultSet rs({"a"});
  rs.AddRow({storage::Value(std::string("x"))});
  rs.AddRow({storage::Value(std::string("y"))});
  EXPECT_DOUBLE_EQ(ResultDiversity(rs), 1.0);
}

TEST(DiversityTest, SingleRowIsZero) {
  exec::ResultSet rs({"a"});
  rs.AddRow({storage::Value(int64_t{1})});
  EXPECT_DOUBLE_EQ(ResultDiversity(rs), 0.0);
}

TEST(DiversityTest, JaccardDistanceBasics) {
  EXPECT_DOUBLE_EQ(JaccardDistance({"a", "b"}, {"a", "b"}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({"a"}, {"b"}), 1.0);
  EXPECT_NEAR(JaccardDistance({"a", "b"}, {"b", "c"}), 1.0 - 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(JaccardDistance({}, {}), 0.0);
}

TEST(RelativeErrorTest, ScalarCases) {
  EXPECT_DOUBLE_EQ(ScalarRelativeError(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(ScalarRelativeError(100.0, 90.0), 0.1);
  EXPECT_DOUBLE_EQ(ScalarRelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ScalarRelativeError(0.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(ScalarRelativeError(10.0, 1000.0), 1.0);  // capped
}

TEST(RelativeErrorTest, GroupedComparison) {
  exec::ResultSet truth({"g", "sum"});
  truth.AddRow({storage::Value(std::string("a")), storage::Value(100.0)});
  truth.AddRow({storage::Value(std::string("b")), storage::Value(50.0)});

  exec::ResultSet pred({"g", "sum"});
  pred.AddRow({storage::Value(std::string("a")), storage::Value(90.0)});
  // Group "b" missing -> contributes 1.
  ASSERT_OK_AND_ASSIGN(double err, RelativeError(truth, pred, 1));
  EXPECT_NEAR(err, (0.1 + 1.0) / 2.0, 1e-9);
}

TEST(RelativeErrorTest, UngroupedScalar) {
  exec::ResultSet truth({"cnt"});
  truth.AddRow({storage::Value(int64_t{200})});
  exec::ResultSet pred({"cnt"});
  pred.AddRow({storage::Value(int64_t{150})});
  ASSERT_OK_AND_ASSIGN(double err, RelativeError(truth, pred, 0));
  EXPECT_NEAR(err, 0.25, 1e-9);
}

TEST(RelativeErrorTest, ColumnMismatchRejected) {
  exec::ResultSet truth({"a", "b"});
  exec::ResultSet pred({"a"});
  EXPECT_FALSE(RelativeError(truth, pred, 0).ok());
}

}  // namespace
}  // namespace metric
}  // namespace asqp
