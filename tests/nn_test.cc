#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.h"
#include "tests/testing.h"

namespace asqp {
namespace nn {
namespace {

TEST(LinearTest, ForwardComputesAffine) {
  util::Rng rng(1);
  Linear layer(2, 2, &rng);
  layer.w = {1.0f, 2.0f,   // row 0
             3.0f, 4.0f};  // row 1
  layer.b = {0.5f, -0.5f};
  std::vector<float> y;
  layer.Forward({1.0f, 1.0f}, &y);
  EXPECT_FLOAT_EQ(y[0], 3.5f);
  EXPECT_FLOAT_EQ(y[1], 6.5f);
}

TEST(LinearTest, BackwardAccumulatesGradients) {
  util::Rng rng(1);
  Linear layer(2, 1, &rng);
  layer.w = {2.0f, -1.0f};
  layer.b = {0.0f};
  std::vector<float> dx;
  layer.Backward({3.0f, 4.0f}, {1.0f}, &dx);
  EXPECT_FLOAT_EQ(layer.dw[0], 3.0f);
  EXPECT_FLOAT_EQ(layer.dw[1], 4.0f);
  EXPECT_FLOAT_EQ(layer.db[0], 1.0f);
  EXPECT_FLOAT_EQ(dx[0], 2.0f);
  EXPECT_FLOAT_EQ(dx[1], -1.0f);
}

/// Finite-difference gradient check of the full MLP backward pass against
/// the scalar loss L = sum(output).
TEST(MlpTest, GradientCheck) {
  Mlp net({3, 5, 2}, Activation::kTanh, 7);
  const std::vector<float> x = {0.3f, -0.7f, 1.1f};

  // Analytic gradients.
  Mlp::Cache cache;
  const std::vector<float> out = net.Forward(x, &cache);
  net.ZeroGrad();
  net.Backward(cache, std::vector<float>(out.size(), 1.0f));

  auto loss = [&](Mlp& n) {
    const std::vector<float> y = n.Forward(x);
    float total = 0.0f;
    for (float v : y) total += v;
    return total;
  };

  const std::vector<float*> params = net.Parameters();
  const std::vector<float*> grads = net.Gradients();
  const std::vector<size_t> lengths = net.BlockLengths();
  const float eps = 1e-3f;
  size_t checked = 0;
  for (size_t blk = 0; blk < params.size(); ++blk) {
    for (size_t i = 0; i < lengths[blk]; i += 7) {  // spot-check every 7th
      const float orig = params[blk][i];
      params[blk][i] = orig + eps;
      const float hi = loss(net);
      params[blk][i] = orig - eps;
      const float lo = loss(net);
      params[blk][i] = orig;
      const float numeric = (hi - lo) / (2.0f * eps);
      EXPECT_NEAR(grads[blk][i], numeric, 5e-2f)
          << "block " << blk << " index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 5u);
}

TEST(MlpTest, CopyWeightsProducesIdenticalOutputs) {
  Mlp a({4, 8, 3}, Activation::kTanh, 1);
  Mlp b({4, 8, 3}, Activation::kTanh, 2);
  const std::vector<float> x = {1.0f, 2.0f, -1.0f, 0.5f};
  EXPECT_NE(a.Forward(x), b.Forward(x));
  b.CopyWeightsFrom(a);
  EXPECT_EQ(a.Forward(x), b.Forward(x));
}

TEST(MlpTest, NumParametersMatchesShape) {
  Mlp net({3, 5, 2}, Activation::kTanh, 3);
  // (3*5 + 5) + (5*2 + 2) = 20 + 12
  EXPECT_EQ(net.num_parameters(), 32u);
}

TEST(AdamTest, FitsLinearRegression) {
  // y = 2x - 1 from noisy samples; a 1-layer net must drive MSE near 0.
  Mlp net({1, 1}, Activation::kNone, 5);
  Adam::Options opts;
  opts.lr = 0.05;
  Adam adam(&net, opts);
  util::Rng rng(11);
  double final_loss = 1e9;
  for (int step = 0; step < 500; ++step) {
    net.ZeroGrad();
    double loss = 0.0;
    for (int s = 0; s < 8; ++s) {
      const float x = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
      const float target = 2.0f * x - 1.0f;
      Mlp::Cache cache;
      const float y = net.Forward({x}, &cache)[0];
      const float err = y - target;
      loss += 0.5 * err * err;
      net.Backward(cache, {err / 8.0f});
    }
    adam.Step();
    final_loss = loss / 8.0;
  }
  EXPECT_LT(final_loss, 1e-3);
}

TEST(MaskedSoftmaxTest, RespectsMask) {
  const std::vector<float> logits = {1.0f, 100.0f, 2.0f};
  const std::vector<uint8_t> mask = {1, 0, 1};
  const std::vector<float> probs = MaskedSoftmax(logits, mask);
  EXPECT_FLOAT_EQ(probs[1], 0.0f);
  EXPECT_NEAR(probs[0] + probs[2], 1.0f, 1e-6f);
  EXPECT_GT(probs[2], probs[0]);
}

TEST(MaskedSoftmaxTest, AllMaskedIsZeros) {
  const std::vector<float> probs = MaskedSoftmax({1.0f, 2.0f}, {0, 0});
  EXPECT_FLOAT_EQ(probs[0], 0.0f);
  EXPECT_FLOAT_EQ(probs[1], 0.0f);
}

TEST(MaskedSoftmaxTest, NumericallyStableForLargeLogits) {
  const std::vector<float> probs =
      MaskedSoftmax({1000.0f, 1000.0f}, {1, 1});
  EXPECT_NEAR(probs[0], 0.5f, 1e-6f);
  EXPECT_FALSE(std::isnan(probs[0]));
}

TEST(EntropyTest, UniformIsMaximal) {
  const float uniform = Entropy({0.25f, 0.25f, 0.25f, 0.25f});
  const float peaked = Entropy({0.97f, 0.01f, 0.01f, 0.01f});
  EXPECT_NEAR(uniform, std::log(4.0f), 1e-5f);
  EXPECT_LT(peaked, uniform);
  EXPECT_FLOAT_EQ(Entropy({1.0f, 0.0f}), 0.0f);
}

TEST(SampleCategoricalTest, MatchesDistribution) {
  util::Rng rng(13);
  const std::vector<float> probs = {0.1f, 0.7f, 0.2f};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[SampleCategorical(probs, &rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.7, 0.02);
}

TEST(SampleCategoricalTest, ZeroProbabilityNeverSampled) {
  util::Rng rng(17);
  const std::vector<float> probs = {0.0f, 1.0f, 0.0f};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(SampleCategorical(probs, &rng), 1u);
  }
}

}  // namespace
}  // namespace nn
}  // namespace asqp
