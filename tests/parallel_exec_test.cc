// Morsel-parallel QueryEngine: the parallel engine must produce
// bit-for-bit identical ResultSets to the sequential engine on every
// workload query (IMDB + flights), respect deadlines/cancellation
// mid-morsel without deadlocking, behave identically across thread
// counts (exercised under TSan), and survive a seeded fuzz loop of
// random SPJ queries. Also pins the bench harness's FilterNonEmpty to
// sequential semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bench_common.h"
#include "data/dataset.h"
#include "exec/executor.h"
#include "metric/score.h"
#include "sql/binder.h"
#include "tests/testing.h"
#include "workloadgen/generator.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace exec {
namespace {

// TSan slows execution 5-15x; keep the workloads small there.
#ifdef ASQP_SANITIZE_THREAD
constexpr size_t kFuzzQueries = 12;
constexpr double kDataScale = 0.01;
constexpr size_t kWorkloadSize = 8;
#else
constexpr size_t kFuzzQueries = 40;
constexpr double kDataScale = 0.02;
constexpr size_t kWorkloadSize = 12;
#endif

data::DatasetBundle MakeBundle(const std::string& name) {
  data::DatasetOptions options;
  options.scale = kDataScale;
  options.workload_size = kWorkloadSize;
  options.seed = 42;
  if (name == "imdb") return data::MakeImdbJob(options);
  return data::MakeFlights(options);
}

QueryEngine MakeParallelEngine(size_t threads, size_t morsel_rows = 64) {
  ExecOptions options;
  options.num_threads = threads;
  // Tiny morsels force many chunks even on test-sized tables, so the
  // merge order and per-morsel deadline paths are actually exercised.
  options.morsel_rows = morsel_rows;
  return QueryEngine(options);
}

void ExpectSameResult(const ResultSet& expected, const ResultSet& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.column_names(), actual.column_names()) << label;
  ASSERT_EQ(expected.num_rows(), actual.num_rows()) << label;
  for (size_t i = 0; i < expected.num_rows(); ++i) {
    ASSERT_EQ(expected.RowKey(i), actual.RowKey(i))
        << label << " row " << i << " differs";
  }
}

/// Run `stmt` through both engines and require identical output
/// (including row order). Queries that fail to bind are skipped; a query
/// that errors must error identically in both engines.
void CompareEngines(const storage::Database& db, const QueryEngine& seq,
                    const QueryEngine& par, const sql::SelectStatement& stmt) {
  const std::string label = stmt.ToSql();
  auto bound = sql::Bind(stmt, db);
  if (!bound.ok()) return;
  storage::DatabaseView view(&db);
  auto expected = seq.Execute(bound.value(), view);
  auto actual = par.Execute(bound.value(), view);
  ASSERT_EQ(expected.ok(), actual.ok())
      << label << ": sequential=" << expected.status().ToString()
      << " parallel=" << actual.status().ToString();
  if (!expected.ok()) {
    EXPECT_EQ(expected.status().code(), actual.status().code()) << label;
    return;
  }
  ExpectSameResult(expected.value(), actual.value(), label);
}

TEST(ParallelExecTest, WorkloadEqualityImdbAndFlights) {
  const QueryEngine seq;
  const QueryEngine par = MakeParallelEngine(4);
  for (const std::string& name : {std::string("imdb"), std::string("flights")}) {
    const data::DatasetBundle bundle = MakeBundle(name);
    ASSERT_GT(bundle.workload.size(), 0u) << name;
    for (const auto& wq : bundle.workload.queries()) {
      CompareEngines(*bundle.db, seq, par, wq.stmt);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ParallelExecTest, ProvenanceEquality) {
  const data::DatasetBundle bundle = MakeBundle("imdb");
  const QueryEngine seq;
  const QueryEngine par = MakeParallelEngine(4);
  storage::DatabaseView view(bundle.db.get());
  for (const auto& wq : bundle.workload.queries()) {
    if (wq.stmt.HasAggregates()) continue;
    auto bound = sql::Bind(wq.stmt, *bundle.db);
    if (!bound.ok()) continue;
    auto expected = seq.ExecuteWithProvenance(bound.value(), view);
    auto actual = par.ExecuteWithProvenance(bound.value(), view);
    ASSERT_EQ(expected.ok(), actual.ok()) << wq.ToSql();
    if (!expected.ok()) continue;
    EXPECT_EQ(expected.value().table_names, actual.value().table_names);
    ASSERT_EQ(expected.value().tuples.size(), actual.value().tuples.size())
        << wq.ToSql();
    for (size_t i = 0; i < expected.value().tuples.size(); ++i) {
      ASSERT_EQ(expected.value().tuples[i], actual.value().tuples[i])
          << wq.ToSql() << " tuple " << i;
    }
  }
}

TEST(ParallelExecTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  const data::DatasetBundle bundle = MakeBundle("imdb");
  const QueryEngine par = MakeParallelEngine(4);
  storage::DatabaseView view(bundle.db.get());
  auto bound = sql::ParseAndBind(
      "SELECT t.name, ci.role FROM title t, cast_info ci "
      "WHERE ci.movie_id = t.id",
      *bundle.db);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // An already-expired deadline trips the first Tick of whichever morsel
  // runs first; the pool must drain and return (no deadlock), and the
  // propagated Status must be kDeadlineExceeded.
  const util::ExecContext context = util::ExecContext::WithDeadline(0.0);
  auto result = par.Execute(bound.value(), view, context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded)
      << result.status().ToString();
}

TEST(ParallelExecTest, CancellationPropagatesAcrossMorsels) {
  const data::DatasetBundle bundle = MakeBundle("imdb");
  const QueryEngine par = MakeParallelEngine(4);
  storage::DatabaseView view(bundle.db.get());
  auto bound = sql::ParseAndBind(
      "SELECT t.name FROM title t WHERE t.production_year >= 0", *bundle.db);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  util::ExecContext context;
  context.RequestCancel();
  auto result = par.Execute(bound.value(), view, context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCancelled)
      << result.status().ToString();
}

TEST(ParallelExecTest, ThreadCountInvariance) {
  // 1 thread = sequential (no pool); 2 and 8 exercise real concurrency —
  // with 8 "threads" on fewer cores the pool still has 7 helpers, which
  // is exactly the oversubscription TSan should see.
  const auto db = testing::MakeTinyMovieDb();
  const QueryEngine seq;
  const std::vector<std::string> queries = {
      "SELECT m.title, r.actor FROM movies m, roles r "
      "WHERE m.id = r.movie_id AND m.year >= 2010 AND r.salary > 12",
      "SELECT m.title, r.salary FROM movies m, roles r "
      "WHERE m.id = r.movie_id AND r.salary > m.rating",
      "SELECT m.year, COUNT(*), AVG(r.salary) FROM movies m, roles r "
      "WHERE m.id = r.movie_id GROUP BY m.year ORDER BY m.year",
  };
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const QueryEngine par = MakeParallelEngine(threads, /*morsel_rows=*/2);
    storage::DatabaseView view(db.get());
    for (const std::string& sql : queries) {
      auto expected = seq.ExecuteSql(sql, view);
      auto actual = par.ExecuteSql(sql, view);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      ExpectSameResult(expected.value(), actual.value(),
                       sql + " @" + std::to_string(threads) + " threads");
    }
  }
}

TEST(ParallelExecTest, FuzzRandomSpjQueries) {
  const data::DatasetBundle bundle = MakeBundle("imdb");
  workloadgen::DatabaseStats stats =
      workloadgen::DatabaseStats::Collect(*bundle.db);
  workloadgen::QueryGenerator gen(bundle.db.get(), &stats, bundle.fks);
  workloadgen::QueryGenOptions options;
  options.max_joins = 2;
  options.max_predicates = 3;
  options.agg_fraction = 0.25;

  const QueryEngine seq;
  const QueryEngine par = MakeParallelEngine(4, /*morsel_rows=*/128);
  util::Rng rng(20240805);
  for (size_t i = 0; i < kFuzzQueries; ++i) {
    const sql::SelectStatement stmt = gen.Generate(options, &rng);
    CompareEngines(*bundle.db, seq, par, stmt);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "fuzz query " << i << ": " << stmt.ToSql();
    }
  }
}

TEST(ParallelExecTest, ApproximationSetViewEquality) {
  // Restricted views route PhysicalRow through the subset; the parallel
  // scan must see the same visible ordinals.
  const auto db = testing::MakeTinyMovieDb();
  storage::ApproximationSet subset;
  for (uint32_t r : {0u, 2u, 3u, 5u, 7u}) subset.Add("movies", r);
  for (uint32_t r : {1u, 2u, 4u, 6u, 8u, 9u}) subset.Add("roles", r);
  subset.Seal();
  storage::DatabaseView view(db.get(), &subset);
  const QueryEngine seq;
  const QueryEngine par = MakeParallelEngine(4, /*morsel_rows=*/2);
  const std::string sql =
      "SELECT m.title, r.actor FROM movies m, roles r "
      "WHERE m.id = r.movie_id AND m.year >= 2000";
  auto expected = seq.ExecuteSql(sql, view);
  auto actual = par.ExecuteSql(sql, view);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ExpectSameResult(expected.value(), actual.value(), sql);
}

/// Three tables with one schema — sales(region STRING, units INT64,
/// price DOUBLE) — so the same query text runs against a NULL-heavy
/// populated table, an empty table, and a table whose group key is NULL
/// in every row.
std::shared_ptr<storage::Database> MakeNullHeavySalesDb() {
  using storage::Schema;
  using storage::Table;
  using storage::Value;
  using storage::ValueType;

  const Schema schema({{"region", ValueType::kString},
                       {"units", ValueType::kInt64},
                       {"price", ValueType::kDouble}});
  auto db = std::make_shared<storage::Database>();

  const auto str = [](const char* s) { return Value(std::string(s)); };
  const auto i64 = [](int64_t v) { return Value(v); };
  auto sales = std::make_shared<Table>("sales", schema);
  const std::vector<std::vector<Value>> kSales = {
      {str("east"), i64(4), Value(2.5)},   {str("west"), i64(7), Value(1.5)},
      {Value(), i64(4), Value(9.0)},       {str("east"), Value(), Value(2.5)},
      {str("north"), i64(-3), Value()},    {str("west"), i64(7), Value(4.25)},
      {Value(), Value(), Value()},         {str("east"), i64(11), Value(0.5)},
      {str("north"), i64(0), Value(9.0)},  {str("west"), Value(), Value(1.5)},
      {str("east"), i64(4), Value(-2.0)},  {Value(), i64(200), Value(0.125)},
      {str("north"), i64(-3), Value(6.5)}, {str("east"), i64(9), Value()},
      {str("west"), i64(1), Value(3.75)},  {str("south"), i64(5), Value(5.0)},
      {Value(), i64(7), Value(2.5)},       {str("north"), Value(), Value(8.0)},
      {str("south"), i64(5), Value()},     {str("east"), i64(2), Value(7.25)},
      {str("west"), i64(13), Value(1.0)},  {str("south"), Value(), Value(5.0)},
      {str("north"), i64(6), Value(0.25)}, {str("east"), i64(-8), Value(4.0)},
  };
  for (const auto& r : kSales) EXPECT_TRUE(sales->AppendRow(r).ok());

  auto empty = std::make_shared<Table>("empty_sales", schema);
  auto null_keys = std::make_shared<Table>("null_key_sales", schema);
  const std::vector<std::vector<Value>> kNullKeys = {
      {Value(), i64(3), Value(1.5)}, {Value(), Value(), Value(2.5)},
      {Value(), i64(3), Value()},    {Value(), i64(-1), Value(1.5)},
      {Value(), i64(8), Value(0.5)}, {Value(), Value(), Value()},
  };
  for (const auto& r : kNullKeys) EXPECT_TRUE(null_keys->AppendRow(r).ok());

  EXPECT_TRUE(db->AddTable(sales).ok());
  EXPECT_TRUE(db->AddTable(empty).ok());
  EXPECT_TRUE(db->AddTable(null_keys).ok());
  return db;
}

TEST(ParallelExecTest, AggregateMatrixSeqVsParallel) {
  // Every aggregate function x {no GROUP BY, GROUP BY, HAVING over the
  // aggregate, ORDER BY over the aggregate} x {NULL-heavy input, empty
  // input, all-NULL group key}, at thread counts {2, 4, 8} against a
  // sequential engine with the same morsel decomposition. morsel_rows=5
  // leaves a ragged final morsel on the 24-row table.
  const auto db = MakeNullHeavySalesDb();
  const QueryEngine seq = MakeParallelEngine(1, /*morsel_rows=*/5);
  const std::vector<std::string> aggs = {
      "COUNT(*)",          "COUNT(s.units)",
      "SUM(s.units)",      "AVG(s.price)",
      "MIN(s.price)",      "MAX(s.units)",
      "COUNT(DISTINCT s.region)", "SUM(DISTINCT s.units)",
  };
  std::vector<std::string> queries;
  for (const std::string& table :
       {std::string("sales"), std::string("empty_sales"),
        std::string("null_key_sales")}) {
    for (const std::string& agg : aggs) {
      const std::string from = " FROM " + table + " s";
      queries.push_back("SELECT " + agg + from);
      queries.push_back("SELECT s.region, " + agg + from +
                        " GROUP BY s.region");
      queries.push_back("SELECT s.region, " + agg + " AS a" + from +
                        " GROUP BY s.region HAVING a >= 1");
      queries.push_back("SELECT s.region, " + agg + " AS a" + from +
                        " GROUP BY s.region ORDER BY a LIMIT 3");
    }
  }
  for (const size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    const QueryEngine par = MakeParallelEngine(threads, /*morsel_rows=*/5);
    storage::DatabaseView view(db.get());
    for (const std::string& sql : queries) {
      auto expected = seq.ExecuteSql(sql, view);
      auto actual = par.ExecuteSql(sql, view);
      ASSERT_TRUE(expected.ok()) << sql << ": "
                                 << expected.status().ToString();
      ASSERT_TRUE(actual.ok()) << sql << ": " << actual.status().ToString();
      ExpectSameResult(expected.value(), actual.value(),
                       sql + " @" + std::to_string(threads) + " threads");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ParallelExecTest, CrossProductCapReportsPartialProgress) {
  // A disconnected join graph forces the cross-product path; a tight
  // intermediate-row cap must fail with an error that reports how many
  // rows were actually produced before the cap tripped.
  const auto db = testing::MakeTinyMovieDb();
  ExecOptions options;
  options.num_threads = 4;
  options.morsel_rows = 2;
  options.max_intermediate_rows = 20;  // 8 movies x 10 roles = 80 > 20
  const QueryEngine par(options);
  storage::DatabaseView view(db.get());
  auto result =
      par.ExecuteSql("SELECT m.title, r.actor FROM movies m, roles r", view);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kExecutionError)
      << result.status().ToString();
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("cross product"), std::string::npos) << message;
  EXPECT_NE(message.find("rows produced before the cap"), std::string::npos)
      << message;
}

TEST(ParallelExecTest, DeadlineMidCrossProductCancelsWithinOneMorsel) {
  // The cross-product rewrite ticks its deadline per outer row, so an
  // already-expired deadline must surface as kDeadlineExceeded from the
  // first morsel instead of materializing the full product first.
  const auto db = testing::MakeTinyMovieDb();
  const QueryEngine par = MakeParallelEngine(4, /*morsel_rows=*/2);
  storage::DatabaseView view(db.get());
  auto bound = sql::ParseAndBind(
      "SELECT m.title, r.actor FROM movies m, roles r", *db);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const util::ExecContext context = util::ExecContext::WithDeadline(0.0);
  auto result = par.Execute(bound.value(), view, context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded)
      << result.status().ToString();
}

TEST(ParallelExecTest, FilterNonEmptyMatchesSequentialSemantics) {
  // The bench harness's parallel FilterNonEmpty must keep exactly the
  // queries a sequential full-result-size pass keeps (the bugfix's
  // "assert identical query counts" contract).
  const data::DatasetBundle bundle = MakeBundle("imdb");
  const metric::Workload filtered =
      bench::FilterNonEmpty(*bundle.db, bundle.workload);

  metric::ScoreEvaluator evaluator(bundle.db.get(),
                                   metric::ScoreOptions{.frame_size = 25});
  std::vector<std::string> expected;
  for (const auto& wq : bundle.workload.queries()) {
    auto size = evaluator.FullResultSize(wq.stmt);
    if (size.ok() && size.value() > 0) expected.push_back(wq.ToSql());
  }
  ASSERT_EQ(filtered.size(), expected.size());
  for (size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(filtered.query(i).ToSql(), expected[i]);
  }
}

}  // namespace
}  // namespace exec
}  // namespace asqp
