// Unit tests for the cost-based planner (src/plan): statistics collection,
// the cardinality-estimator formulas, each rewrite rule (constant folding,
// duplicate pruning, transitive filter pushdown), the DP / greedy join
// ordering, and the EXPLAIN rendering. End-to-end byte invariance of
// planner-on vs planner-off is proven at scale by
// differential_exec_test.cc; this file pins the planning decisions
// themselves.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "plan/card_est.h"
#include "plan/planner.h"
#include "plan/stats.h"
#include "sql/binder.h"
#include "sql/canonicalize.h"
#include "storage/database.h"
#include "testing.h"

namespace asqp {
namespace plan {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = asqp::testing::MakeTinyMovieDb();
    stats_ = StatsCatalog::Collect(*db_);
  }

  sql::BoundQuery Bind(const std::string& sql) {
    auto bound = sql::ParseAndBind(sql, *db_);
    EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status().ToString();
    return std::move(bound).value();
  }

  /// Selectivity of the first filter conjunct of table 0 in `sql`.
  double FirstFilterSelectivity(const std::string& sql,
                                const StatsCatalog* catalog) {
    const sql::BoundQuery q = Bind(sql);
    EXPECT_FALSE(q.filters[0].empty()) << sql;
    CardinalityEstimator est(catalog, &q);
    return est.Selectivity(*q.filters[0][0], 0);
  }

  std::shared_ptr<storage::Database> db_;
  StatsCatalog stats_;
};

// ---- Statistics collection --------------------------------------------

TEST_F(PlanTest, CatalogCollectsRowCountsNdvAndRanges) {
  ASSERT_EQ(stats_.num_tables(), 2u);
  const TableStatistics* movies = stats_.FindTable("movies");
  ASSERT_NE(movies, nullptr);
  EXPECT_EQ(movies->row_count, 8u);

  // movies(id, title, year, rating): year has 7 distinct values over
  // [1999, 2021]; title is a string column (NDV but no numeric range).
  const ColumnStatistics* year = stats_.FindColumn("movies", 2);
  ASSERT_NE(year, nullptr);
  EXPECT_EQ(year->ndv, 7u);
  ASSERT_TRUE(year->has_range);
  EXPECT_DOUBLE_EQ(year->min, 1999.0);
  EXPECT_DOUBLE_EQ(year->max, 2021.0);
  EXPECT_DOUBLE_EQ(year->null_fraction, 0.0);

  const ColumnStatistics* title = stats_.FindColumn("movies", 1);
  ASSERT_NE(title, nullptr);
  EXPECT_EQ(title->ndv, 8u);
  EXPECT_FALSE(title->has_range);

  // roles.movie_id references 6 of the 8 movies.
  const ColumnStatistics* movie_id = stats_.FindColumn("roles", 0);
  ASSERT_NE(movie_id, nullptr);
  EXPECT_EQ(movie_id->ndv, 6u);

  EXPECT_EQ(stats_.FindTable("nope"), nullptr);
  EXPECT_EQ(stats_.FindColumn("movies", 99), nullptr);
}

// ---- Cardinality estimation -------------------------------------------

TEST_F(PlanTest, EqualitySelectivityIsOneOverNdv) {
  EXPECT_DOUBLE_EQ(FirstFilterSelectivity(
                       "SELECT m.id FROM movies m WHERE m.year = 2010",
                       &stats_),
                   1.0 / 7.0);
}

TEST_F(PlanTest, RangeSelectivityInterpolatesMinMax) {
  // (2010 - 1999) / (2021 - 1999) = 0.5 of the range lies below 2010.
  EXPECT_DOUBLE_EQ(FirstFilterSelectivity(
                       "SELECT m.id FROM movies m WHERE m.year < 2010",
                       &stats_),
                   0.5);
  EXPECT_DOUBLE_EQ(FirstFilterSelectivity(
                       "SELECT m.id FROM movies m WHERE m.year > 2010",
                       &stats_),
                   0.5);
  // Mirrored spelling hits the same formula.
  EXPECT_DOUBLE_EQ(FirstFilterSelectivity(
                       "SELECT m.id FROM movies m WHERE 2010 > m.year",
                       &stats_),
                   0.5);
}

TEST_F(PlanTest, BetweenSelectivityIntersectsTheRange) {
  EXPECT_DOUBLE_EQ(
      FirstFilterSelectivity(
          "SELECT m.id FROM movies m WHERE m.year BETWEEN 2004 AND 2015",
          &stats_),
      0.5);
}

TEST_F(PlanTest, NullComparisonNeverPasses) {
  EXPECT_DOUBLE_EQ(FirstFilterSelectivity(
                       "SELECT m.id FROM movies m WHERE m.year = NULL",
                       &stats_),
                   0.0);
}

TEST_F(PlanTest, DefaultsApplyWithoutStatistics) {
  EXPECT_DOUBLE_EQ(FirstFilterSelectivity(
                       "SELECT m.id FROM movies m WHERE m.year = 2010",
                       nullptr),
                   CardDefaults::kEquality);
  EXPECT_DOUBLE_EQ(FirstFilterSelectivity(
                       "SELECT m.id FROM movies m WHERE m.year < 2010",
                       nullptr),
                   CardDefaults::kRange);
  EXPECT_DOUBLE_EQ(FirstFilterSelectivity(
                       "SELECT m.id FROM movies m WHERE m.title LIKE 'a%'",
                       nullptr),
                   CardDefaults::kLike);
}

TEST_F(PlanTest, ConjunctionMultipliesAndDisjunctionAddsOut) {
  // AND: 0.5 * (1/7); OR: 0.5 + 1/7 - 0.5/7 (inclusion-exclusion). The
  // binder splits top-level WHERE conjunctions into separate filter
  // conjuncts, so the AND case rebuilds the node from the bound halves.
  const double eq = 1.0 / 7.0;
  const sql::BoundQuery q = Bind(
      "SELECT m.id FROM movies m WHERE m.year < 2010 AND m.year = 2010");
  ASSERT_EQ(q.filters[0].size(), 2u);
  const sql::ExprPtr conj = sql::Expr::Binary(
      sql::BinOp::kAnd, q.filters[0][0], q.filters[0][1]);
  CardinalityEstimator est(&stats_, &q);
  EXPECT_DOUBLE_EQ(est.Selectivity(*conj, 0), 0.5 * eq);
  EXPECT_DOUBLE_EQ(
      FirstFilterSelectivity("SELECT m.id FROM movies m "
                             "WHERE m.year < 2010 OR m.year = 2010",
                             &stats_),
      0.5 + eq - 0.5 * eq);
}

TEST_F(PlanTest, JoinSelectivityIsOneOverMaxNdv) {
  const sql::BoundQuery q = Bind(
      "SELECT m.title FROM movies m, roles r WHERE r.movie_id = m.id");
  ASSERT_EQ(q.joins.size(), 1u);
  CardinalityEstimator est(&stats_, &q);
  // movies.id has NDV 8, roles.movie_id has NDV 6.
  EXPECT_DOUBLE_EQ(est.JoinSelectivity(q.joins[0]), 1.0 / 8.0);
}

TEST_F(PlanTest, FilteredRowsScaleTheTable) {
  const sql::BoundQuery q =
      Bind("SELECT m.id FROM movies m WHERE m.year = 2010");
  CardinalityEstimator est(&stats_, &q);
  EXPECT_DOUBLE_EQ(est.EstimateFilteredRows(0, q.filters[0]), 8.0 / 7.0);
}

// ---- Rewrite rules ----------------------------------------------------

TEST_F(PlanTest, ConstantFoldingCollapsesLiteralArithmetic) {
  const sql::BoundQuery q =
      Bind("SELECT m.id FROM movies m WHERE m.year > 1000 + 999");
  PlanSummary summary;
  const sql::BoundQuery planned = PlanQuery(q, &stats_, &summary);
  EXPECT_GE(summary.folded_constants, 1u);
  ASSERT_EQ(planned.filters[0].size(), 1u);
  const sql::BoundQuery want =
      Bind("SELECT m.id FROM movies m WHERE m.year > 1999");
  EXPECT_EQ(sql::CanonicalizeExpr(*planned.filters[0][0]),
            sql::CanonicalizeExpr(*want.filters[0][0]));
  // The input query is untouched.
  EXPECT_NE(sql::CanonicalizeExpr(*q.filters[0][0]),
            sql::CanonicalizeExpr(*want.filters[0][0]));
}

TEST_F(PlanTest, ConstantTrueConjunctIsDropped) {
  const sql::BoundQuery q = Bind("SELECT m.id FROM movies m WHERE 1 < 2");
  const sql::BoundQuery planned = PlanQuery(q, &stats_);
  size_t conjuncts = planned.residual.size();
  for (const auto& filters : planned.filters) conjuncts += filters.size();
  EXPECT_EQ(conjuncts, 0u);
}

TEST_F(PlanTest, ConstantFalseConjunctIsKept) {
  // FALSE zeroes the result — it must survive to be evaluated.
  const sql::BoundQuery q = Bind("SELECT m.id FROM movies m WHERE 1 > 2");
  const sql::BoundQuery planned = PlanQuery(q, &stats_);
  size_t conjuncts = planned.residual.size();
  for (const auto& filters : planned.filters) conjuncts += filters.size();
  EXPECT_EQ(conjuncts, 1u);
}

TEST_F(PlanTest, DuplicateConjunctsPruneToOne) {
  const sql::BoundQuery q = Bind(
      "SELECT m.id FROM movies m WHERE m.year > 2000 AND 2000 < m.year");
  PlanSummary summary;
  const sql::BoundQuery planned = PlanQuery(q, &stats_, &summary);
  EXPECT_EQ(planned.filters[0].size(), 1u);
  EXPECT_EQ(summary.pruned_duplicates, 1u);
}

TEST_F(PlanTest, FilterPropagatesAcrossJoinEquality) {
  const sql::BoundQuery q = Bind(
      "SELECT m.title FROM movies m, roles r "
      "WHERE r.movie_id = m.id AND m.id >= 5");
  PlanSummary summary;
  const sql::BoundQuery planned = PlanQuery(q, &stats_, &summary);
  EXPECT_EQ(summary.propagated_filters, 1u);
  // roles (FROM index 1) gained the propagated movie_id >= 5 filter.
  ASSERT_EQ(planned.filters[1].size(), 1u);
  ASSERT_EQ(summary.tables.size(), 2u);
  EXPECT_EQ(summary.tables[1].propagated_filters, 1u);
  // The propagated conjunct was retargeted onto roles.movie_id
  // (FROM index 1, column 0).
  const sql::Expr& moved = *planned.filters[1][0];
  ASSERT_EQ(moved.kind, sql::ExprKind::kBinary);
  ASSERT_EQ(moved.left->kind, sql::ExprKind::kColumnRef);
  EXPECT_EQ(moved.left->table_idx, 1);
  EXPECT_EQ(moved.left->col_idx, 0);
  // The original query did not gain a filter.
  EXPECT_TRUE(q.filters[1].empty());
}

TEST_F(PlanTest, DoubleJoinKeysDoNotPropagate) {
  // rating/salary are DOUBLE columns; the join-key serialization is not
  // injective for doubles, so propagation across them is unsound and must
  // not happen.
  const sql::BoundQuery q = Bind(
      "SELECT m.title FROM movies m, roles r "
      "WHERE r.salary = m.rating AND m.rating > 7");
  PlanSummary summary;
  const sql::BoundQuery planned = PlanQuery(q, &stats_, &summary);
  EXPECT_EQ(summary.propagated_filters, 0u);
  EXPECT_TRUE(planned.filters[1].empty());
}

TEST_F(PlanTest, PropagationSkipsAnAlreadyIdenticalFilter) {
  const sql::BoundQuery q = Bind(
      "SELECT m.title FROM movies m, roles r "
      "WHERE r.movie_id = m.id AND m.id >= 5 AND r.movie_id >= 5");
  PlanSummary summary;
  const sql::BoundQuery planned = PlanQuery(q, &stats_, &summary);
  // Each side already carries the bound; nothing new may be added.
  EXPECT_EQ(planned.filters[0].size(), 1u);
  EXPECT_EQ(planned.filters[1].size(), 1u);
}

// ---- Join ordering ----------------------------------------------------

TEST_F(PlanTest, DpSeedsTheSmallestTableWithoutFilters) {
  const sql::BoundQuery q = Bind(
      "SELECT m.title, r.actor FROM movies m, roles r "
      "WHERE r.movie_id = m.id");
  PlanSummary summary;
  const sql::BoundQuery planned = PlanQuery(q, &stats_, &summary);
  EXPECT_TRUE(summary.used_dp);
  // movies (8 rows) seeds before roles (10 rows).
  EXPECT_EQ(planned.join_order, (std::vector<int>{0, 1}));
}

TEST_F(PlanTest, DpSeedsTheSelectivelyFilteredTable) {
  const sql::BoundQuery q = Bind(
      "SELECT m.title, r.actor FROM movies m, roles r "
      "WHERE r.movie_id = m.id AND r.actor = 'ann'");
  PlanSummary summary;
  const sql::BoundQuery planned = PlanQuery(q, &stats_, &summary);
  // roles shrinks to 10/5 = 2 estimated rows, below movies' 8.
  EXPECT_EQ(planned.join_order, (std::vector<int>{1, 0}));
  EXPECT_LT(summary.tables[1].estimated_rows,
            summary.tables[0].estimated_rows);
}

TEST_F(PlanTest, WideJoinsFallBackToGreedy) {
  const sql::BoundQuery q = Bind(
      "SELECT a.id FROM movies a, movies b, movies c, movies d, movies e, "
      "movies f, movies g WHERE a.id = b.id AND b.id = c.id AND "
      "c.id = d.id AND d.id = e.id AND e.id = f.id AND f.id = g.id");
  PlanSummary summary;
  const sql::BoundQuery planned = PlanQuery(q, &stats_, &summary);
  EXPECT_FALSE(summary.used_dp);
  // Still a valid permutation of all 7 FROM entries.
  std::vector<int> sorted = planned.join_order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST_F(PlanTest, SingleTableGetsTrivialOrder) {
  const sql::BoundQuery q = Bind("SELECT m.id FROM movies m");
  const sql::BoundQuery planned = PlanQuery(q, &stats_);
  EXPECT_EQ(planned.join_order, (std::vector<int>{0}));
}

// ---- EXPLAIN ----------------------------------------------------------

TEST_F(PlanTest, ExplainRendersTheChosenPlan) {
  exec::ExecOptions options;
  options.planner_stats =
      std::make_shared<const StatsCatalog>(StatsCatalog::Collect(*db_));
  const exec::QueryEngine engine(options);
  storage::DatabaseView view(db_.get());
  auto text = engine.ExplainSql(
      "SELECT m.title, r.actor FROM movies m, roles r "
      "WHERE r.movie_id = m.id AND r.actor = 'ann'",
      view);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("column statistics"), std::string::npos)
      << text.value();
  EXPECT_NE(text.value().find("exact-dp"), std::string::npos) << text.value();
  EXPECT_NE(text.value().find("join order: t1 -> t0"), std::string::npos)
      << text.value();
}

TEST_F(PlanTest, ExplainReportsDisabledPlanner) {
  exec::ExecOptions options;
  options.enable_planner = false;
  const exec::QueryEngine engine(options);
  storage::DatabaseView view(db_.get());
  auto text = engine.ExplainSql("SELECT m.id FROM movies m", view);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("planner disabled"), std::string::npos)
      << text.value();
}

// ---- Invariance spot check --------------------------------------------

TEST_F(PlanTest, PlannerOnAndOffProduceIdenticalBytes) {
  const char kSql[] =
      "SELECT m.title, r.actor FROM movies m, roles r "
      "WHERE r.movie_id = m.id AND r.actor = 'ann'";
  storage::DatabaseView view(db_.get());
  exec::ExecOptions off;
  off.enable_planner = false;
  exec::ExecOptions on;
  on.planner_stats =
      std::make_shared<const StatsCatalog>(StatsCatalog::Collect(*db_));
  auto a = exec::QueryEngine(off).ExecuteSql(kSql, view);
  auto b = exec::QueryEngine(on).ExecuteSql(kSql, view);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a.value().num_rows(), b.value().num_rows());
  for (size_t r = 0; r < a.value().num_rows(); ++r) {
    EXPECT_EQ(a.value().RowKey(r), b.value().RowKey(r)) << "row " << r;
  }
}

}  // namespace
}  // namespace plan
}  // namespace asqp
