// Property-based suites over generated queries and subsets: invariants
// that must hold for *every* input, checked across many random instances.
#include <gtest/gtest.h>

#include "data/dataset.h"
#include "exec/executor.h"
#include "metric/score.h"
#include "relax/relax.h"
#include "rl/env.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "tests/testing.h"
#include "workloadgen/generator.h"

namespace asqp {
namespace {

/// Shared small bundles, one per dataset, built once.
const data::DatasetBundle& Bundle(const std::string& name) {
  // Leaky singleton: shared across tests, freed at process exit.
  static auto* bundles = new std::map<std::string, data::DatasetBundle>();  // NOLINT(asqp-naked-new)
  auto it = bundles->find(name);
  if (it != bundles->end()) return it->second;
  data::DatasetOptions options;
  options.scale = 0.03;
  options.workload_size = 25;
  options.seed = 99;
  data::DatasetBundle bundle;
  if (name == "imdb") bundle = data::MakeImdbJob(options);
  else if (name == "mas") bundle = data::MakeMas(options);
  else bundle = data::MakeFlights(options);
  return bundles->emplace(name, std::move(bundle)).first->second;
}

class DatasetPropertyTest : public ::testing::TestWithParam<std::string> {};

/// ToSql -> Parse -> ToSql is a fixpoint for every generated query.
TEST_P(DatasetPropertyTest, SqlRoundTripFixpoint) {
  const auto& bundle = Bundle(GetParam());
  for (const auto& wq : bundle.workload.queries()) {
    const std::string sql1 = wq.stmt.ToSql();
    ASSERT_OK_AND_ASSIGN(auto reparsed, sql::Parse(sql1));
    EXPECT_EQ(reparsed.ToSql(), sql1);
  }
}

/// Execution is deterministic: two runs of the same plan produce
/// identical results.
TEST_P(DatasetPropertyTest, ExecutionDeterminism) {
  const auto& bundle = Bundle(GetParam());
  exec::QueryEngine engine;
  storage::DatabaseView view(bundle.db.get());
  for (size_t i = 0; i < std::min<size_t>(bundle.workload.size(), 8); ++i) {
    ASSERT_OK_AND_ASSIGN(auto bound,
                         sql::Bind(bundle.workload.query(i).stmt, *bundle.db));
    ASSERT_OK_AND_ASSIGN(auto a, engine.Execute(bound, view));
    ASSERT_OK_AND_ASSIGN(auto b, engine.Execute(bound, view));
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (size_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.RowKey(r), b.RowKey(r));
    }
  }
}

/// SPJ monotonicity: executing over a random subset yields a subset of
/// the full result's rows (LIMIT removed).
TEST_P(DatasetPropertyTest, SubsetExecutionIsMonotone) {
  const auto& bundle = Bundle(GetParam());
  exec::QueryEngine engine;
  util::Rng rng(7);

  storage::ApproximationSet subset;
  for (const std::string& name : bundle.db->TableNames()) {
    auto table = bundle.db->GetTable(name).value();
    for (size_t r : rng.SampleIndices(table->num_rows(),
                                      table->num_rows() / 3)) {
      subset.Add(name, static_cast<uint32_t>(r));
    }
  }
  subset.Seal();

  storage::DatabaseView full(bundle.db.get());
  storage::DatabaseView restricted(bundle.db.get(), &subset);
  for (size_t i = 0; i < std::min<size_t>(bundle.workload.size(), 10); ++i) {
    sql::SelectStatement stmt = bundle.workload.query(i).stmt.Clone();
    if (stmt.HasAggregates()) continue;
    stmt.limit = -1;
    stmt.order_by.clear();
    ASSERT_OK_AND_ASSIGN(auto bound, sql::Bind(stmt, *bundle.db));
    ASSERT_OK_AND_ASSIGN(auto truth, engine.Execute(bound, full));
    ASSERT_OK_AND_ASSIGN(auto approx, engine.Execute(bound, restricted));
    EXPECT_LE(approx.num_rows(), truth.num_rows());
    auto truth_keys = truth.RowKeySet();
    for (size_t r = 0; r < approx.num_rows(); ++r) {
      EXPECT_TRUE(truth_keys.count(approx.RowKey(r)))
          << "query " << i << " row " << r;
    }
  }
}

/// COUNT(*) agrees with the SPJ row count of the same FROM/WHERE.
TEST_P(DatasetPropertyTest, CountStarMatchesSpjRowCount) {
  const auto& bundle = Bundle(GetParam());
  exec::QueryEngine engine;
  storage::DatabaseView view(bundle.db.get());
  for (size_t i = 0; i < std::min<size_t>(bundle.workload.size(), 8); ++i) {
    sql::SelectStatement spj = bundle.workload.query(i).stmt.Clone();
    if (spj.HasAggregates()) continue;
    spj.limit = -1;
    spj.order_by.clear();
    spj.distinct = false;

    sql::SelectStatement counting = spj.Clone();
    counting.items.clear();
    sql::SelectItem count_star;
    count_star.agg = sql::AggFunc::kCount;
    count_star.star = true;
    counting.items.push_back(std::move(count_star));

    ASSERT_OK_AND_ASSIGN(auto b1, sql::Bind(spj, *bundle.db));
    ASSERT_OK_AND_ASSIGN(auto b2, sql::Bind(counting, *bundle.db));
    ASSERT_OK_AND_ASSIGN(auto rows, engine.Execute(b1, view));
    ASSERT_OK_AND_ASSIGN(auto count, engine.Execute(b2, view));
    ASSERT_EQ(count.num_rows(), 1u);
    EXPECT_EQ(static_cast<size_t>(count.row(0)[0].AsInt64()), rows.num_rows());
  }
}

/// The Eq.-1 score is bounded in [0, 1] and monotone under subset growth.
TEST_P(DatasetPropertyTest, ScoreBoundedAndMonotone) {
  const auto& bundle = Bundle(GetParam());
  metric::ScoreEvaluator evaluator(bundle.db.get(),
                                   metric::ScoreOptions{.frame_size = 20});
  util::Rng rng(13);

  // Nested subsets S1 subset-of S2 subset-of S3.
  std::vector<std::pair<std::string, uint32_t>> all;
  for (const std::string& name : bundle.db->TableNames()) {
    auto table = bundle.db->GetTable(name).value();
    for (uint32_t r = 0; r < table->num_rows(); ++r) all.emplace_back(name, r);
  }
  rng.Shuffle(&all);
  double prev = -1.0;
  for (double fraction : {0.05, 0.2, 0.6}) {
    storage::ApproximationSet subset;
    const size_t count = static_cast<size_t>(fraction * all.size());
    for (size_t i = 0; i < count; ++i) subset.Add(all[i].first, all[i].second);
    subset.Seal();
    ASSERT_OK_AND_ASSIGN(double score,
                         evaluator.Score(bundle.workload, subset));
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
    EXPECT_GE(score, prev - 1e-9)
        << "score must not decrease as the subset grows";
    prev = score;
  }
}

/// Relaxation produces supersets for every generated query.
TEST_P(DatasetPropertyTest, RelaxationSupersetSweep) {
  const auto& bundle = Bundle(GetParam());
  const workloadgen::DatabaseStats stats =
      workloadgen::DatabaseStats::Collect(*bundle.db);
  exec::QueryEngine engine;
  storage::DatabaseView view(bundle.db.get());
  util::Rng rng(21);
  relax::RelaxOptions options;
  options.drop_probability = 0.25;

  for (size_t i = 0; i < std::min<size_t>(bundle.workload.size(), 10); ++i) {
    sql::SelectStatement orig = bundle.workload.query(i).stmt.Clone();
    if (orig.HasAggregates()) continue;
    orig.limit = -1;
    orig.order_by.clear();
    const sql::SelectStatement relaxed =
        relax::RelaxQuery(orig, stats, options, &rng);
    ASSERT_OK_AND_ASSIGN(auto b1, sql::Bind(orig, *bundle.db));
    ASSERT_OK_AND_ASSIGN(auto b2, sql::Bind(relaxed, *bundle.db));
    ASSERT_OK_AND_ASSIGN(auto r1, engine.Execute(b1, view));
    ASSERT_OK_AND_ASSIGN(auto r2, engine.Execute(b2, view));
    EXPECT_GE(r2.num_rows(), r1.num_rows());
    auto relaxed_keys = r2.RowKeySet();
    for (size_t r = 0; r < r1.num_rows(); ++r) {
      EXPECT_TRUE(relaxed_keys.count(r1.RowKey(r))) << "query " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetPropertyTest,
                         ::testing::Values("imdb", "mas", "flights"));

// ---------------------------------------------------------- RL env sweep

enum class EnvName { kGsl, kDrp, kHybrid };

class EnvPropertyTest : public ::testing::TestWithParam<EnvName> {
 protected:
  static rl::ActionSpace MakeSpace() {
    rl::ActionSpace space;
    space.table_names = {"t"};
    space.budget = 12;
    space.num_queries = 4;
    space.query_target = {3.0f, 3.0f, 3.0f, 3.0f};
    space.query_weight = {0.25f, 0.25f, 0.25f, 0.25f};
    const size_t actions = 16;
    util::Rng rng(3);
    for (size_t a = 0; a < actions; ++a) {
      rl::PoolTuple p{{{0, static_cast<uint32_t>(a)}}};
      space.pool.push_back(p);
      space.action_tuples.push_back({static_cast<uint32_t>(a)});
      space.action_cost.push_back(1 + a % 3);
    }
    space.contribution.assign(actions * 4, 0.0f);
    for (size_t a = 0; a < actions; ++a) {
      space.contribution[a * 4 + a % 4] =
          static_cast<float>(rng.UniformInt(0, 2));
    }
    return space;
  }

  std::unique_ptr<rl::Env> MakeEnv(const rl::ActionSpace* space) {
    switch (GetParam()) {
      case EnvName::kGsl:
        return std::make_unique<rl::GslEnv>(space, 0);
      case EnvName::kDrp:
        return std::make_unique<rl::DrpEnv>(space, 0, 6);
      case EnvName::kHybrid:
        return std::make_unique<rl::HybridEnv>(space, 0, 4);
    }
    return nullptr;
  }
};

/// Invariants for every environment over random playouts: the mask always
/// marks at least the actions the env accepts, selected actions never
/// exceed the budget, per-action selection stays within [0, 1], and the
/// state vector stays within its documented bounds.
TEST_P(EnvPropertyTest, RandomPlayoutInvariants) {
  const rl::ActionSpace space = MakeSpace();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    auto env = MakeEnv(&space);
    util::Rng rng(seed);
    env->Reset(seed, &rng);
    for (int step = 0; step < 64; ++step) {
      std::vector<size_t> valid;
      for (size_t a = 0; a < env->action_mask().size(); ++a) {
        if (env->action_mask()[a]) valid.push_back(a);
      }
      if (valid.empty()) break;
      const rl::StepResult result =
          env->Step(valid[rng.NextBounded(valid.size())]);

      // Budget invariant: materialized selection fits.
      size_t used = 0;
      for (size_t a : env->SelectedActions()) used += space.action_cost[a];
      EXPECT_LE(used, space.budget);

      // State bounds.
      for (float v : env->state()) {
        EXPECT_GE(v, -1e-5f);
        EXPECT_LE(v, 1.0f + 1e-5f);
      }
      // Scores bounded.
      EXPECT_GE(env->FullScore(), 0.0);
      EXPECT_LE(env->FullScore(), 1.0);
      if (result.done) break;
    }
  }
}

/// Reset fully clears episode state: two playouts with the same seed and
/// action choices are identical.
TEST_P(EnvPropertyTest, ResetIsIdempotent) {
  const rl::ActionSpace space = MakeSpace();
  auto env = MakeEnv(&space);

  auto playout = [&](uint64_t seed) {
    util::Rng rng(seed);
    env->Reset(0, &rng);
    std::vector<double> rewards;
    for (int step = 0; step < 20; ++step) {
      std::vector<size_t> valid;
      for (size_t a = 0; a < env->action_mask().size(); ++a) {
        if (env->action_mask()[a]) valid.push_back(a);
      }
      if (valid.empty()) break;
      const rl::StepResult r = env->Step(valid[step % valid.size()]);
      rewards.push_back(r.reward);
      if (r.done) break;
    }
    return rewards;
  };

  const auto first = playout(5);
  const auto second = playout(5);
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Envs, EnvPropertyTest,
                         ::testing::Values(EnvName::kGsl, EnvName::kDrp,
                                           EnvName::kHybrid));

}  // namespace
}  // namespace asqp
