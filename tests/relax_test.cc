#include <gtest/gtest.h>

#include "exec/executor.h"
#include "relax/relax.h"
#include "sql/parser.h"
#include "tests/testing.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace relax {
namespace {

class RelaxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeTinyMovieDb();
    stats_ = workloadgen::DatabaseStats::Collect(*db_);
  }

  sql::SelectStatement MustParse(const std::string& s) {
    auto r = sql::Parse(s);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  size_t ResultSize(const sql::SelectStatement& stmt) {
    storage::DatabaseView view(db_.get());
    auto bound = sql::Bind(stmt, *db_);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    auto rs = engine_.Execute(bound.value(), view);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    return rs.value().num_rows();
  }

  std::shared_ptr<storage::Database> db_;
  workloadgen::DatabaseStats stats_;
  exec::QueryEngine engine_;
};

TEST_F(RelaxTest, RelaxationIsSuperset) {
  // Property (paper Section 4.2): the relaxed query's result contains the
  // original's. Check across many queries and seeds.
  const char* kQueries[] = {
      "SELECT * FROM movies WHERE year > 2015",
      "SELECT * FROM movies WHERE year = 2010",
      "SELECT * FROM movies WHERE rating BETWEEN 6 AND 8",
      "SELECT * FROM movies WHERE title LIKE 'ep%'",
      "SELECT * FROM movies WHERE year IN (1999, 2004)",
      "SELECT m.title, r.actor FROM movies m, roles r WHERE m.id = "
      "r.movie_id AND r.salary > 12",
      "SELECT * FROM movies WHERE year >= 2010 AND rating < 7 LIMIT 2",
  };
  RelaxOptions opts;
  opts.drop_probability = 0.3;
  for (const char* q : kQueries) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      util::Rng rng(seed);
      sql::SelectStatement orig = MustParse(q);
      sql::SelectStatement relaxed = RelaxQuery(orig, stats_, opts, &rng);
      // Compare set containment on unlimited versions of both queries.
      sql::SelectStatement orig_unlimited = orig.Clone();
      orig_unlimited.limit = -1;
      orig_unlimited.order_by.clear();
      storage::DatabaseView view(db_.get());
      auto b1 = sql::Bind(orig_unlimited, *db_);
      auto b2 = sql::Bind(relaxed, *db_);
      ASSERT_TRUE(b1.ok() && b2.ok());
      auto r1 = engine_.Execute(b1.value(), view);
      auto r2 = engine_.Execute(b2.value(), view);
      ASSERT_TRUE(r1.ok() && r2.ok()) << q;
      auto relaxed_keys = r2.value().RowKeySet();
      for (size_t i = 0; i < r1.value().num_rows(); ++i) {
        EXPECT_TRUE(relaxed_keys.count(r1.value().RowKey(i)))
            << "query " << q << " seed " << seed;
      }
    }
  }
}

TEST_F(RelaxTest, WidensNumericRange) {
  util::Rng rng(1);
  RelaxOptions opts;
  opts.drop_probability = 0.0;
  opts.widen_fraction = 0.3;
  auto stmt = MustParse("SELECT * FROM movies WHERE year > 2018");
  const size_t before = ResultSize(stmt);
  auto relaxed = RelaxQuery(stmt, stats_, opts, &rng);
  EXPECT_GT(ResultSize(relaxed), before);
}

TEST_F(RelaxTest, EqualityBecomesRangeOrIn) {
  util::Rng rng(2);
  RelaxOptions opts;
  opts.drop_probability = 0.0;
  auto stmt = MustParse("SELECT * FROM movies WHERE year = 2010");
  auto relaxed = RelaxQuery(stmt, stats_, opts, &rng);
  EXPECT_EQ(relaxed.where->kind, sql::ExprKind::kBetween);
  EXPECT_GE(ResultSize(relaxed), ResultSize(stmt));
}

TEST_F(RelaxTest, CategoricalEqualityExtendsToIn) {
  util::Rng rng(3);
  RelaxOptions opts;
  opts.drop_probability = 0.0;
  opts.in_extension = 2;
  auto stmt = MustParse("SELECT * FROM roles WHERE actor = 'ann'");
  auto relaxed = RelaxQuery(stmt, stats_, opts, &rng);
  ASSERT_EQ(relaxed.where->kind, sql::ExprKind::kIn);
  EXPECT_GE(relaxed.where->in_list.size(), 2u);
  EXPECT_GE(ResultSize(relaxed), ResultSize(stmt));
}

TEST_F(RelaxTest, JoinPredicatesNeverDropped) {
  RelaxOptions opts;
  opts.drop_probability = 1.0;  // drop everything droppable
  util::Rng rng(4);
  auto stmt = MustParse(
      "SELECT m.title FROM movies m, roles r WHERE m.id = r.movie_id AND "
      "m.year > 2000");
  auto relaxed = RelaxQuery(stmt, stats_, opts, &rng);
  std::vector<sql::ExprPtr> conjuncts;
  sql::CollectConjuncts(relaxed.where, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 1u);  // only the join survives
  EXPECT_EQ(conjuncts[0]->op, sql::BinOp::kEq);
}

TEST_F(RelaxTest, LimitAndOrderRemoved) {
  util::Rng rng(5);
  auto stmt =
      MustParse("SELECT * FROM movies WHERE year > 2000 ORDER BY year LIMIT 2");
  auto relaxed = RelaxQuery(stmt, stats_, RelaxOptions{}, &rng);
  EXPECT_EQ(relaxed.limit, -1);
  EXPECT_TRUE(relaxed.order_by.empty());
}

TEST_F(RelaxTest, LikePrefixShortened) {
  util::Rng rng(6);
  RelaxOptions opts;
  opts.drop_probability = 0.0;
  auto stmt = MustParse("SELECT * FROM movies WHERE title LIKE 'the%'");
  auto relaxed = RelaxQuery(stmt, stats_, opts, &rng);
  EXPECT_EQ(relaxed.where->like_pattern, "th%");
}

TEST_F(RelaxTest, NoWhereIsFine) {
  util::Rng rng(7);
  auto stmt = MustParse("SELECT * FROM movies");
  auto relaxed = RelaxQuery(stmt, stats_, RelaxOptions{}, &rng);
  EXPECT_EQ(relaxed.where, nullptr);
}

}  // namespace
}  // namespace relax
}  // namespace asqp
