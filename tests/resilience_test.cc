// Resilience suite: deadline/cancellation propagation through the query
// engine, divergence-safe training with rollback + LR backoff,
// checkpoint/resume determinism, the Answer() full-database degradation
// path, and the fault-injection harness itself.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/config.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "exec/executor.h"
#include "io/io.h"
#include "rl/action_space.h"
#include "rl/env.h"
#include "rl/trainer.h"
#include "serve/serve_engine.h"
#include "sql/parser.h"
#include "storage/index.h"
#include "tests/testing.h"
#include "util/exec_context.h"
#include "util/fault_injector.h"

namespace asqp {
namespace {

using util::Status;
using util::StatusCode;

/// Every test that arms a fault disarms it on teardown, so later tests see
/// the zero-cost disabled state again.
class FaultPointTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::Global().Reset(); }
};

// ---------------------------------------------------------- fault harness

TEST_F(FaultPointTest, DisabledByDefaultAndArmable) {
  EXPECT_FALSE(util::FaultInjector::enabled());
  EXPECT_FALSE(ASQP_FAULT_POINT("resilience.test.point"));

  util::FaultInjector::Global().Arm("resilience.test.point", /*count=*/2);
  EXPECT_TRUE(util::FaultInjector::enabled());
  EXPECT_TRUE(ASQP_FAULT_POINT("resilience.test.point"));
  EXPECT_TRUE(ASQP_FAULT_POINT("resilience.test.point"));
  EXPECT_FALSE(ASQP_FAULT_POINT("resilience.test.point"));  // count spent
  EXPECT_EQ(util::FaultInjector::Global().fire_count("resilience.test.point"),
            2);
  // Unarmed points never fire even while the injector is enabled.
  EXPECT_FALSE(ASQP_FAULT_POINT("resilience.other.point"));

  util::FaultInjector::Global().Reset();
  EXPECT_FALSE(util::FaultInjector::enabled());
  EXPECT_FALSE(ASQP_FAULT_POINT("resilience.test.point"));
}

TEST_F(FaultPointTest, SkipDelaysFiring) {
  util::FaultInjector::Global().Arm("resilience.skip.point", /*count=*/1,
                                    /*skip=*/2);
  EXPECT_FALSE(ASQP_FAULT_POINT("resilience.skip.point"));
  EXPECT_FALSE(ASQP_FAULT_POINT("resilience.skip.point"));
  EXPECT_TRUE(ASQP_FAULT_POINT("resilience.skip.point"));
  EXPECT_FALSE(ASQP_FAULT_POINT("resilience.skip.point"));
}

TEST_F(FaultPointTest, ArmFromSpecArmsWellFormedEntries) {
  auto& inj = util::FaultInjector::Global();
  EXPECT_EQ(inj.ArmFromSpec("spec.a, spec.b:2 , spec.c:1:1"), 3u);

  EXPECT_TRUE(ASQP_FAULT_POINT("spec.a"));   // default count=1
  EXPECT_FALSE(ASQP_FAULT_POINT("spec.a"));  // spent

  EXPECT_TRUE(ASQP_FAULT_POINT("spec.b"));
  EXPECT_TRUE(ASQP_FAULT_POINT("spec.b"));
  EXPECT_FALSE(ASQP_FAULT_POINT("spec.b"));

  EXPECT_FALSE(ASQP_FAULT_POINT("spec.c"));  // skipped once
  EXPECT_TRUE(ASQP_FAULT_POINT("spec.c"));
  EXPECT_FALSE(ASQP_FAULT_POINT("spec.c"));
}

TEST_F(FaultPointTest, ArmFromSpecAllowsAlwaysFireCount) {
  auto& inj = util::FaultInjector::Global();
  EXPECT_EQ(inj.ArmFromSpec("spec.always:-1"), 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ASQP_FAULT_POINT("spec.always"));
  }
}

TEST_F(FaultPointTest, ArmFromSpecSkipsMalformedEntries) {
  auto& inj = util::FaultInjector::Global();
  // Non-integer count ("1e3" must not atoi to 1), empty point name,
  // negative skip, too many fields, trailing junk — all skipped; the one
  // well-formed entry still arms.
  EXPECT_EQ(inj.ArmFromSpec("spec.bad:1e3, :5, spec.neg:1:-1, "
                            "spec.many:1:2:3, spec.junk:2x, spec.ok"),
            1u);
  EXPECT_FALSE(ASQP_FAULT_POINT("spec.bad"));
  EXPECT_FALSE(ASQP_FAULT_POINT("spec.neg"));
  EXPECT_FALSE(ASQP_FAULT_POINT("spec.many"));
  EXPECT_FALSE(ASQP_FAULT_POINT("spec.junk"));
  EXPECT_TRUE(ASQP_FAULT_POINT("spec.ok"));
}

TEST_F(FaultPointTest, ArmFromSpecEmptyListArmsNothing) {
  auto& inj = util::FaultInjector::Global();
  EXPECT_EQ(inj.ArmFromSpec(""), 0u);
  EXPECT_EQ(inj.ArmFromSpec(" , ,"), 0u);
  EXPECT_FALSE(util::FaultInjector::enabled());
}

// ------------------------------------------- executor deadline/cancel/row

class ExecResilienceTest : public FaultPointTest {
 protected:
  void SetUp() override {
    db_ = testing::MakeTinyMovieDb();
    view_ = std::make_unique<storage::DatabaseView>(db_.get());
  }

  static constexpr const char* kJoinSql =
      "SELECT m.title, r.actor FROM movies m, roles r WHERE m.id = r.movie_id";

  std::shared_ptr<storage::Database> db_;
  std::unique_ptr<storage::DatabaseView> view_;
  exec::QueryEngine engine_;
};

TEST_F(ExecResilienceTest, ZeroDeadlineReturnsDeadlineExceeded) {
  const util::ExecContext context = util::ExecContext::WithDeadline(0.0);
  const auto r = engine_.ExecuteSql("SELECT title FROM movies WHERE year > 0",
                                    *view_, context);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);

  // The same query without a deadline succeeds — the engine state is not
  // poisoned by the aborted execution.
  ASSERT_OK_AND_ASSIGN(auto rs, engine_.ExecuteSql(
                                    "SELECT title FROM movies WHERE year > 0",
                                    *view_));
  EXPECT_EQ(rs.num_rows(), 8u);
}

TEST_F(ExecResilienceTest, ZeroDeadlineJoinAndAggregateAbort) {
  const util::ExecContext context = util::ExecContext::WithDeadline(0.0);
  EXPECT_EQ(engine_.ExecuteSql(kJoinSql, *view_, context).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine_
                .ExecuteSql("SELECT year, COUNT(*) FROM movies GROUP BY year",
                            *view_, context)
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
}

TEST_F(ExecResilienceTest, CancellationReturnsCancelled) {
  util::ExecContext context;
  context.EnableCancellation();
  ASSERT_OK_AND_ASSIGN(auto before, engine_.ExecuteSql(kJoinSql, *view_,
                                                       context));
  EXPECT_EQ(before.num_rows(), 10u);

  context.RequestCancel();
  const auto r = engine_.ExecuteSql(kJoinSql, *view_, context);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(ExecResilienceTest, RowBudgetReturnsResourceExhausted) {
  util::ExecContext context;
  context.set_max_rows(2);  // the join materializes 10 rows
  const auto r = engine_.ExecuteSql(kJoinSql, *view_, context);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ExecResilienceTest, InjectedJoinAllocationFailure) {
  util::FaultInjector::Global().Arm("exec.join.alloc");
  const auto r = engine_.ExecuteSql(kJoinSql, *view_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("injected fault"), std::string::npos);

  // The fault was one-shot; the next execution succeeds.
  ASSERT_OK_AND_ASSIGN(auto rs, engine_.ExecuteSql(kJoinSql, *view_));
  EXPECT_EQ(rs.num_rows(), 10u);
}

TEST_F(ExecResilienceTest, ProvenancePathHonorsDeadline) {
  ASSERT_OK_AND_ASSIGN(auto stmt, sql::Parse(kJoinSql));
  ASSERT_OK_AND_ASSIGN(auto bound, sql::Bind(stmt, *db_));
  const util::ExecContext context = util::ExecContext::WithDeadline(0.0);
  const auto r =
      engine_.ExecuteWithProvenance(bound, *view_, /*max_tuples=*/0, context);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

// ------------------------------------------------------ index build faults

TEST_F(ExecResilienceTest, FailedIndexBuildDegradesToFullScan) {
  constexpr const char* kSql = "SELECT title FROM movies WHERE year = 2010";
  ASSERT_OK_AND_ASSIGN(const exec::ResultSet want,
                       engine_.ExecuteSql(kSql, *view_));
  ASSERT_EQ(want.num_rows(), 2u);

  // Persistently failing builds: every per-column build is skipped (never
  // fatal — index presence must not gate answering), counted, and the
  // catalog comes back empty.
  const auto specs = storage::AllIndexColumns(*db_);
  util::FaultInjector::Global().Arm("index.build", /*count=*/-1);
  auto broken = std::make_shared<storage::IndexCatalog>(
      storage::IndexCatalog::Build(*view_, specs, /*generation=*/0));
  util::FaultInjector::Global().Reset();
  EXPECT_EQ(broken->num_indexes(), 0u);
  EXPECT_EQ(broken->failed_builds(), specs.size());
  EXPECT_EQ(broken->Find("movies", 2), nullptr);

  // An engine carrying the broken catalog still answers — the planner finds
  // no index for the chosen conjunct, degrades to the full scan, and the
  // result is byte-identical to the index-free engine's.
  exec::ExecOptions options;
  options.index_catalog = broken;
  const exec::QueryEngine degraded(options);
  ASSERT_OK_AND_ASSIGN(const exec::ResultSet got,
                       degraded.ExecuteSql(kSql, *view_));
  ASSERT_EQ(got.num_rows(), want.num_rows());
  for (size_t r = 0; r < want.num_rows(); ++r) {
    EXPECT_EQ(got.RowKey(r), want.RowKey(r)) << "row " << r;
  }
  ASSERT_OK_AND_ASSIGN(const std::string plan,
                       degraded.ExplainSql(kSql, *view_));
  EXPECT_EQ(plan.find("IndexRangeScan"), std::string::npos) << plan;
  EXPECT_NE(plan.find("FullScan"), std::string::npos) << plan;
}

TEST_F(ExecResilienceTest, PartialIndexBuildFailureKeepsRemainingIndexes) {
  // One-shot fault: the first column's build fails, every later one
  // succeeds — a partial catalog, not an all-or-nothing failure.
  const auto specs = storage::AllIndexColumns(*db_);
  util::FaultInjector::Global().Arm("index.build");
  auto partial = std::make_shared<storage::IndexCatalog>(
      storage::IndexCatalog::Build(*view_, specs, /*generation=*/0));
  EXPECT_EQ(partial->failed_builds(), 1u);
  EXPECT_EQ(partial->num_indexes(), specs.size() - 1);
  EXPECT_EQ(partial->Find(specs[0].table, specs[0].column), nullptr);
  ASSERT_NE(partial->Find("movies", 2), nullptr);  // "year" survived

  exec::ExecOptions options;
  options.index_catalog = partial;
  const exec::QueryEngine degraded(options);
  // Queries over surviving and missing indexes alike match the baseline.
  for (const char* sql :
       {"SELECT title FROM movies WHERE year = 2010",
        "SELECT title FROM movies WHERE id = 3"}) {
    ASSERT_OK_AND_ASSIGN(const exec::ResultSet want,
                         engine_.ExecuteSql(sql, *view_));
    ASSERT_OK_AND_ASSIGN(const exec::ResultSet got,
                         degraded.ExecuteSql(sql, *view_));
    ASSERT_EQ(got.num_rows(), want.num_rows()) << sql;
    for (size_t r = 0; r < want.num_rows(); ++r) {
      EXPECT_EQ(got.RowKey(r), want.RowKey(r)) << sql << " row " << r;
    }
  }
  // The surviving index is actually chosen for the selective predicate.
  ASSERT_OK_AND_ASSIGN(
      const std::string plan,
      degraded.ExplainSql("SELECT title FROM movies WHERE year = 2010",
                          *view_));
  EXPECT_NE(plan.find("IndexRangeScan(year"), std::string::npos) << plan;
}

// ----------------------------------------------------- training rollback

/// Toy action space (mirrors rl_test): actions 0-2 fully cover the 3
/// queries, every action costs 2 tuples, budget 6.
rl::ActionSpace MakeToySpace(size_t num_actions = 12) {
  rl::ActionSpace space;
  space.table_names = {"t"};
  space.budget = 6;
  space.num_queries = 3;
  space.query_target = {2.0f, 2.0f, 2.0f};
  space.query_weight = {1.0f / 3, 1.0f / 3, 1.0f / 3};
  for (size_t a = 0; a < num_actions; ++a) {
    rl::PoolTuple p1{{{0, static_cast<uint32_t>(2 * a)}}};
    rl::PoolTuple p2{{{0, static_cast<uint32_t>(2 * a + 1)}}};
    space.pool.push_back(p1);
    space.pool.push_back(p2);
    space.action_tuples.push_back(
        {static_cast<uint32_t>(2 * a), static_cast<uint32_t>(2 * a + 1)});
    space.action_cost.push_back(2);
  }
  space.contribution.assign(num_actions * 3, 0.0f);
  for (size_t a = 0; a < 3; ++a) space.contribution[a * 3 + a] = 2.0f;
  return space;
}

rl::TrainerConfig ToyTrainerConfig() {
  rl::TrainerConfig config;
  config.iterations = 6;
  config.episodes_per_iteration = 4;
  config.num_workers = 2;
  config.hidden_dim = 16;
  config.learning_rate = 3e-3;
  config.seed = 21;
  return config;
}

TEST_F(FaultPointTest, InjectedNanGradientRollsBackAndRecovers) {
  rl::ActionSpace space = MakeToySpace();
  rl::EnvFactory factory = [&space] {
    return std::make_unique<rl::GslEnv>(&space, 0);
  };
  const rl::TrainerConfig config = ToyTrainerConfig();

  // One poisoned Adam step: the first update writes a NaN gradient.
  util::FaultInjector::Global().Arm("nn.adam.nan_grad", /*count=*/1);
  ASSERT_OK_AND_ASSIGN(rl::TrainResult result, rl::Train(factory, config));
  EXPECT_GE(result.divergence_rollbacks, 1u);
  EXPECT_LT(result.final_learning_rate, config.learning_rate);

  // Training completed all iterations with a finite curve and policy.
  EXPECT_EQ(result.iterations_run, config.iterations);
  ASSERT_EQ(result.iteration_scores.size(), config.iterations);
  for (double s : result.iteration_scores) EXPECT_TRUE(std::isfinite(s));
  EXPECT_FALSE(result.policy.actor->HasNonFiniteParameters());
  ASSERT_NE(result.policy.critic, nullptr);
  EXPECT_FALSE(result.policy.critic->HasNonFiniteParameters());
}

TEST_F(FaultPointTest, PersistentDivergenceExhaustsRetries) {
  rl::ActionSpace space = MakeToySpace();
  rl::EnvFactory factory = [&space] {
    return std::make_unique<rl::GslEnv>(&space, 0);
  };
  rl::TrainerConfig config = ToyTrainerConfig();
  config.max_divergence_retries = 2;

  // Every Adam step is poisoned: rollback cannot help, so Train must give
  // up with an error instead of returning a NaN policy.
  util::FaultInjector::Global().Arm("nn.adam.nan_grad", /*count=*/-1);
  const auto result = rl::Train(factory, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(result.status().message().find("diverged"), std::string::npos);
}

// ----------------------------------------------- checkpoint/resume (exact)

class TempPath {
 public:
  TempPath() {
    static int counter = 0;
    path_ = ::testing::TempDir() + "asqp_resilience_" +
            std::to_string(counter++);
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CheckpointTest, SaveLoadRoundTrip) {
  rl::TrainCheckpoint ckpt;
  ckpt.policy = rl::Policy::Create(/*state_dim=*/8, /*action_count=*/4,
                                   /*hidden=*/8, /*with_critic=*/true, 3);
  ckpt.actor_opt = {{0.1f, -0.25f}, {0.5f, 0.75f}, 7};
  ckpt.critic_opt = {{1.5f}, {2.5f}, 3};
  ckpt.rng = {{1, 2, 3, 0xFFFFFFFFFFFFFFFFull}, true, -0.123456789012345};
  ckpt.learning_rate = 1.25e-3;
  ckpt.next_iteration = 4;
  ckpt.episode_counter = 16;
  ckpt.iteration_scores = {0.25, 0.5, 0.625, 0.75};
  ckpt.best_score = 0.75;
  ckpt.episodes_run = 16;
  ckpt.early_stop_best = 0.75;
  ckpt.early_stop_since_best = 1;
  ckpt.divergence_rollbacks = 2;

  TempPath file;
  ASSERT_OK(io::SaveCheckpoint(ckpt, file.path()));
  ASSERT_OK_AND_ASSIGN(rl::TrainCheckpoint loaded,
                       io::LoadCheckpoint(file.path()));

  EXPECT_EQ(loaded.policy.actor->Dims(), ckpt.policy.actor->Dims());
  ASSERT_NE(loaded.policy.critic, nullptr);
  EXPECT_EQ(loaded.actor_opt.m, ckpt.actor_opt.m);
  EXPECT_EQ(loaded.actor_opt.v, ckpt.actor_opt.v);
  EXPECT_EQ(loaded.actor_opt.t, ckpt.actor_opt.t);
  EXPECT_EQ(loaded.critic_opt.m, ckpt.critic_opt.m);
  EXPECT_EQ(loaded.rng.s, ckpt.rng.s);
  EXPECT_EQ(loaded.rng.has_cached_normal, ckpt.rng.has_cached_normal);
  EXPECT_EQ(loaded.rng.cached_normal, ckpt.rng.cached_normal);
  EXPECT_EQ(loaded.learning_rate, ckpt.learning_rate);
  EXPECT_EQ(loaded.next_iteration, 4u);
  EXPECT_EQ(loaded.episode_counter, 16u);
  EXPECT_EQ(loaded.iteration_scores, ckpt.iteration_scores);
  EXPECT_EQ(loaded.best_score, ckpt.best_score);
  EXPECT_EQ(loaded.early_stop_since_best, 1u);
  EXPECT_EQ(loaded.divergence_rollbacks, 2u);
}

TEST(CheckpointTest, LoadRejectsGarbageAndMissing) {
  EXPECT_EQ(io::LoadCheckpoint("/nonexistent/ckpt").status().code(),
            StatusCode::kNotFound);
  TempPath file;
  {
    std::ofstream out(file.path());
    out << "not a checkpoint\n";
  }
  EXPECT_EQ(io::LoadCheckpoint(file.path()).status().code(),
            StatusCode::kParseError);
}

TEST_F(FaultPointTest, InjectedCheckpointWriteFailureSurfaces) {
  rl::TrainCheckpoint ckpt;
  ckpt.policy = rl::Policy::Create(8, 4, 8, /*with_critic=*/false, 3);
  TempPath file;
  util::FaultInjector::Global().Arm("io.checkpoint.write");
  const Status st = io::SaveCheckpoint(ckpt, file.path());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  // Nothing was left behind: the failure happened before the tmp write.
  EXPECT_EQ(io::LoadCheckpoint(file.path()).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, InterruptedTrainingResumesBitForBit) {
  rl::ActionSpace space = MakeToySpace();
  rl::EnvFactory factory = [&space] {
    return std::make_unique<rl::GslEnv>(&space, 0);
  };

  // Uninterrupted reference run.
  ASSERT_OK_AND_ASSIGN(rl::TrainResult full,
                       rl::Train(factory, ToyTrainerConfig()));

  // Interrupted run: stop after 3 of 6 iterations, checkpointing as we go.
  TempPath ckpt;
  rl::TrainerConfig half = ToyTrainerConfig();
  half.iterations = 3;
  half.checkpoint_path = ckpt.path();
  ASSERT_OK_AND_ASSIGN(rl::TrainResult interrupted,
                       rl::Train(factory, half));
  ASSERT_EQ(interrupted.iteration_scores.size(), 3u);
  EXPECT_FALSE(interrupted.resumed);

  // Resume to the full 6 iterations from the on-disk checkpoint.
  rl::TrainerConfig rest = ToyTrainerConfig();
  rest.checkpoint_path = ckpt.path();
  rest.resume_from_checkpoint = true;
  ASSERT_OK_AND_ASSIGN(rl::TrainResult resumed, rl::Train(factory, rest));
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.iterations_run, 6u);

  // Bit-for-bit: the resumed curve and final scores match the
  // uninterrupted run exactly, not approximately.
  ASSERT_EQ(resumed.iteration_scores.size(), full.iteration_scores.size());
  for (size_t i = 0; i < full.iteration_scores.size(); ++i) {
    EXPECT_EQ(resumed.iteration_scores[i], full.iteration_scores[i])
        << "iteration " << i;
  }
  EXPECT_EQ(resumed.best_score, full.best_score);
  EXPECT_EQ(resumed.episodes_run, full.episodes_run);
}

// ------------------------------------------------ Answer() degradation

TEST_F(FaultPointTest, AnswerFallsBackToFullDatabaseOnTimeout) {
  data::DatasetOptions opts;
  opts.scale = 0.03;
  opts.workload_size = 8;
  opts.seed = 5;
  const data::DatasetBundle bundle = data::MakeImdbJob(opts);

  core::AsqpConfig config;
  config.k = 150;
  config.frame_size = 20;
  config.num_representatives = 6;
  config.pool_target = 250;
  config.trainer.iterations = 3;
  config.trainer.num_workers = 1;
  config.trainer.hidden_dim = 32;
  // Route everything through the approximation set, under a deadline that
  // the armed fault will report as expired.
  config.answerable_threshold = 0.0;
  config.answer_deadline_seconds = 3600.0;

  core::AsqpTrainer trainer(config);
  ASSERT_OK_AND_ASSIGN(core::TrainReport report,
                       trainer.Train(*bundle.db, bundle.workload));
  core::AsqpModel& model = *report.model;

  // Every deadline poll inside the engine now reports expiry.
  util::FaultInjector::Global().Arm("exec.deadline", /*count=*/-1);
  size_t fell_back = 0;
  for (const auto& q : bundle.workload.queries()) {
    ASSERT_OK_AND_ASSIGN(core::AnswerResult answer, model.Answer(q.stmt));
    if (answer.fell_back) {
      ++fell_back;
      EXPECT_FALSE(answer.used_approximation);
      EXPECT_NE(answer.fallback_reason.find("deadline"), std::string::npos);
    }
  }
  EXPECT_GT(fell_back, 0u);
  EXPECT_GT(util::FaultInjector::Global().fire_count("exec.deadline"), 0);
  util::FaultInjector::Global().Reset();

  // With the fault disarmed the same queries are served from the
  // approximation set again, unflagged.
  ASSERT_OK_AND_ASSIGN(core::AnswerResult healthy,
                       model.Answer(bundle.workload.query(0).stmt));
  EXPECT_TRUE(healthy.used_approximation);
  EXPECT_FALSE(healthy.fell_back);
}

// ------------------------------------- serve-path fault-point coverage

/// One case per fault point reachable from ServeEngine::Answer.
struct ServeFaultCase {
  const char* name;   ///< gtest parameter label
  const char* point;  ///< fault point to arm
  const char* sql;    ///< query whose execution path crosses the point
  /// True when the fault is transient (kResourceExhausted): a one-shot
  /// arming must be absorbed by the approximation tier's retry. False for
  /// deadline faults, which degrade immediately.
  bool transient;
  /// Client-visible outcome when the fault fires on *every* call.
  enum class Persistent { kFullDatabase, kLearned, kDegraded } persistent;
};

/// Shared trained model: the suite is read-mostly (ServeEngine per test),
/// and per-test teardown disarms faults and re-closes the breaker.
class ServeFaultPointTest : public ::testing::TestWithParam<ServeFaultCase> {
 protected:
  static void SetUpTestSuite() {
    data::DatasetOptions opts;
    opts.scale = 0.03;
    opts.workload_size = 8;
    opts.seed = 5;
    // Suite fixture: paired with delete in TearDownTestSuite.
    bundle_ = new data::DatasetBundle(data::MakeImdbJob(opts));  // NOLINT(asqp-naked-new)

    core::AsqpConfig config;
    config.k = 150;
    config.frame_size = 20;
    config.num_representatives = 6;
    config.pool_target = 250;
    config.trainer.iterations = 3;
    config.trainer.num_workers = 1;
    config.trainer.hidden_dim = 32;
    // Route everything through the approximation tier; the configured
    // deadline is what the exec.deadline fault pretends has expired.
    config.answerable_threshold = 0.0;
    config.answer_deadline_seconds = 3600.0;
    core::AsqpTrainer trainer(config);
    auto report = trainer.Train(*bundle_->db, bundle_->workload);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    model_ = std::move(report.value().model);
    ASSERT_NE(model_->learned_fallback(), nullptr);
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete bundle_;  // NOLINT(asqp-naked-new)
    bundle_ = nullptr;
  }
  void TearDown() override {
    util::FaultInjector::Global().Reset();
    model_->circuit_breaker().RecordSuccess();
  }

  static serve::ServeOptions Options() {
    serve::ServeOptions options;
    options.max_inflight = 2;
    options.queue_capacity = 4;
    // A pool, so the radix-partitioned join build (exec.join.partition)
    // is on the serve path.
    options.pool_threads = 2;
    options.cache_bytes = 0;  // every request executes
    return options;
  }

  static data::DatasetBundle* bundle_;
  static std::unique_ptr<core::AsqpModel> model_;
};

data::DatasetBundle* ServeFaultPointTest::bundle_ = nullptr;
std::unique_ptr<core::AsqpModel> ServeFaultPointTest::model_ = nullptr;

TEST_P(ServeFaultPointTest, OneShotFaultIsRetriedOrDegradedGracefully) {
  const ServeFaultCase& c = GetParam();
  serve::ServeEngine engine(model_.get(), Options());
  const core::AsqpModel::AnswerStats before = model_->answer_stats();

  util::FaultInjector::Global().Arm(c.point, /*count=*/1);
  ASSERT_OK_AND_ASSIGN(core::AnswerResult result, engine.AnswerSql(c.sql));
  EXPECT_GT(util::FaultInjector::Global().fire_count(c.point), 0)
      << c.point << " was never reached from the serve path";
  if (c.transient) {
    // Absorbed by the approximation tier's retry: the client sees a
    // normal answer and only the retry counter betrays the fault.
    EXPECT_EQ(result.tier, core::AnswerTier::kApproximation);
    EXPECT_FALSE(result.fell_back);
    EXPECT_GE(model_->answer_stats().retries, before.retries + 1);
  } else {
    // Deadline faults never retry: the full database answers, flagged.
    EXPECT_EQ(result.tier, core::AnswerTier::kFullDatabase);
    EXPECT_TRUE(result.fell_back);
    EXPECT_NE(result.fallback_reason.find("deadline"), std::string::npos);
  }
}

TEST_P(ServeFaultPointTest, PersistentFaultEndsInTypedDegradation) {
  const ServeFaultCase& c = GetParam();
  serve::ServeEngine engine(model_.get(), Options());

  util::FaultInjector::Global().Arm(c.point, /*count=*/-1);
  util::Result<core::AnswerResult> result = engine.AnswerSql(c.sql);
  const std::string want_reason = std::string("fault:") + c.point;
  switch (c.persistent) {
    case ServeFaultCase::Persistent::kFullDatabase:
      // The degraded full-database execution runs without a deadline
      // ticker, out of the fault's reach.
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result.value().tier, core::AnswerTier::kFullDatabase);
      EXPECT_TRUE(result.value().fell_back);
      EXPECT_EQ(result.value().fallback_reason, want_reason);
      break;
    case ServeFaultCase::Persistent::kLearned:
      // Both executing tiers are poisoned; the learned answerer serves
      // the aggregate with its calibrated error bound.
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result.value().tier, core::AnswerTier::kLearned);
      EXPECT_TRUE(result.value().fell_back);
      EXPECT_EQ(result.value().fallback_reason, want_reason);
      EXPECT_GT(result.value().error_estimate, 0.0);
      break;
    case ServeFaultCase::Persistent::kDegraded:
      // Every tier exhausted and the query is outside the learned class:
      // the client gets the typed kDegraded, never a raw fault.
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kDegraded);
      EXPECT_NE(result.status().message().find(want_reason),
                std::string::npos);
      break;
  }

  // Disarmed, the same query is healthy again.
  util::FaultInjector::Global().Reset();
  ASSERT_OK_AND_ASSIGN(core::AnswerResult healthy, engine.AnswerSql(c.sql));
  EXPECT_EQ(healthy.tier, core::AnswerTier::kApproximation);
  EXPECT_FALSE(healthy.fell_back);
}

constexpr char kServeJoinSql[] =
    "SELECT t.name, ci.role FROM title t, cast_info ci "
    "WHERE ci.movie_id = t.id AND t.production_year >= 2000";
constexpr char kServeAggSql[] =
    "SELECT COUNT(*) FROM title t WHERE t.production_year >= 2000";

INSTANTIATE_TEST_SUITE_P(
    AllReachablePoints, ServeFaultPointTest,
    ::testing::Values(
        ServeFaultCase{"deadline", "exec.deadline", kServeJoinSql,
                       /*transient=*/false,
                       ServeFaultCase::Persistent::kFullDatabase},
        ServeFaultCase{"join_alloc", "exec.join.alloc", kServeJoinSql,
                       /*transient=*/true,
                       ServeFaultCase::Persistent::kDegraded},
        ServeFaultCase{"join_partition", "exec.join.partition", kServeJoinSql,
                       /*transient=*/true,
                       ServeFaultCase::Persistent::kDegraded},
        ServeFaultCase{"agg_partial", "exec.agg.partial", kServeAggSql,
                       /*transient=*/true,
                       ServeFaultCase::Persistent::kLearned}),
    [](const ::testing::TestParamInfo<ServeFaultCase>& info) {
      return std::string(info.param.name);
    });

// A fault inside a shared-scan batch must degrade only the member it hit:
// its peers' answers are byte-identical to what an unbatched engine
// serves, and the faulted member still gets a well-formed degraded answer
// (never a raw error, never a poisoned batch).
TEST_F(ServeFaultPointTest, BatchedMemberFaultDegradesAloneInItsBatch) {
  const std::vector<std::string> sqls = {
      "SELECT t.name FROM title t WHERE t.production_year >= 2000",
      "SELECT t.name FROM title t WHERE t.production_year < 1970",
      "SELECT t.name FROM title t WHERE t.rating > 8",
  };

  // Unbatched reference answers (engines one at a time: each re-routes
  // the model's execution pool through itself).
  std::vector<std::vector<std::string>> want;
  {
    serve::ServeEngine plain(model_.get(), Options());
    for (const std::string& sql : sqls) {
      ASSERT_OK_AND_ASSIGN(core::AnswerResult r, plain.AnswerSql(sql));
      std::vector<std::string> keys;
      for (size_t i = 0; i < r.result.num_rows(); ++i) {
        keys.push_back(r.result.RowKey(i));
      }
      want.push_back(std::move(keys));
    }
  }

  serve::ServeOptions options = Options();
  options.batch_window_ms = 200.0;
  options.batch_max_queries = sqls.size();  // closes when the last arrives
  serve::ServeEngine engine(model_.get(), options);

  // One shot: exactly one batched member crosses the armed point (they
  // execute in deterministic submission order, so it is the first).
  util::FaultInjector::Global().Arm("serve.batch", /*count=*/1);
  std::vector<serve::AnswerFuture> futures;
  for (const std::string& sql : sqls) {
    futures.push_back(engine.AnswerSqlAsync(sql));
  }
  std::vector<core::AnswerResult> got;
  for (serve::AnswerFuture& f : futures) {
    util::Result<core::AnswerResult> r = f.Get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    got.push_back(std::move(r).value());
  }
  EXPECT_EQ(util::FaultInjector::Global().fire_count("serve.batch"), 1);

  size_t faulted = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].fell_back) {
      ++faulted;
      EXPECT_EQ(got[i].fallback_reason, "fault:serve.batch");
      EXPECT_FALSE(got[i].used_approximation);
    } else {
      // Peers are untouched: approximation-tier answers, byte-identical
      // to the unbatched engine's.
      std::vector<std::string> keys;
      for (size_t r = 0; r < got[i].result.num_rows(); ++r) {
        keys.push_back(got[i].result.RowKey(r));
      }
      EXPECT_EQ(keys, want[i]) << sqls[i];
      EXPECT_EQ(got[i].tier, core::AnswerTier::kApproximation);
    }
  }
  EXPECT_EQ(faulted, 1u);
  // The three same-table members shared one batch and one scan pass.
  serve::ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.batches_formed, 1u);
  EXPECT_EQ(stats.batch_members, sqls.size());
}

}  // namespace
}  // namespace asqp
