#include <gtest/gtest.h>

#include <numeric>

#include "rl/action_space.h"
#include "rl/env.h"
#include "rl/policy.h"
#include "rl/rollout.h"
#include "rl/trainer.h"
#include "tests/testing.h"

namespace asqp {
namespace rl {
namespace {

/// A small synthetic action space with a known-good subset: actions 0-2
/// fully cover all 3 queries; actions 3+ contribute nothing. Every action
/// costs 2 base tuples; budget 6 fits exactly three actions.
ActionSpace MakeToySpace(size_t num_actions = 12) {
  ActionSpace space;
  space.table_names = {"t"};
  space.budget = 6;
  space.num_queries = 3;
  space.query_target = {2.0f, 2.0f, 2.0f};
  space.query_weight = {1.0f / 3, 1.0f / 3, 1.0f / 3};

  for (size_t a = 0; a < num_actions; ++a) {
    PoolTuple p1{{{0, static_cast<uint32_t>(2 * a)}}};
    PoolTuple p2{{{0, static_cast<uint32_t>(2 * a + 1)}}};
    space.pool.push_back(p1);
    space.pool.push_back(p2);
    space.action_tuples.push_back({static_cast<uint32_t>(2 * a),
                                   static_cast<uint32_t>(2 * a + 1)});
    space.action_cost.push_back(2);
  }
  space.contribution.assign(num_actions * 3, 0.0f);
  // Action a covers query a (for a < 3) completely.
  for (size_t a = 0; a < 3; ++a) {
    space.contribution[a * 3 + a] = 2.0f;
  }
  return space;
}

TEST(ActionSpaceTest, MaterializeDeduplicates) {
  ActionSpace space = MakeToySpace();
  // Make actions 0 and 1 share a base tuple.
  space.action_tuples[1][0] = space.action_tuples[0][0];
  const storage::ApproximationSet set = space.Materialize({0, 1});
  EXPECT_EQ(set.TotalTuples(), 3u);  // 4 refs, 1 shared
}

TEST(GslEnvTest, MaskingAndBudget) {
  ActionSpace space = MakeToySpace();
  GslEnv env(&space, /*batch_size=*/0);
  util::Rng rng(1);
  env.Reset(0, &rng);

  // All actions initially valid.
  for (uint8_t m : env.action_mask()) EXPECT_EQ(m, 1);
  EXPECT_EQ(env.state_dim(), 12u + 3u + 3u);

  StepResult r0 = env.Step(0);
  EXPECT_FALSE(r0.done);
  EXPECT_EQ(env.action_mask()[0], 0);  // action masking: no repeats
  EXPECT_NEAR(r0.reward, 1.0 / 3.0, 1e-6);  // query 0 fully covered

  env.Step(3);  // useless action
  StepResult r2 = env.Step(1);
  EXPECT_NEAR(r2.reward, 1.0 / 3.0, 1e-6);
  EXPECT_TRUE(r2.done);  // budget 6 exhausted after 3 actions
  EXPECT_EQ(env.SelectedActions().size(), 3u);
}

TEST(GslEnvTest, RewardsTelescopeToScore) {
  ActionSpace space = MakeToySpace();
  GslEnv env(&space, 0);
  util::Rng rng(2);
  env.Reset(0, &rng);
  double total = 0.0;
  total += env.Step(2).reward;
  total += env.Step(0).reward;
  total += env.Step(5).reward;
  EXPECT_NEAR(total, env.CurrentScore(), 1e-6);
  EXPECT_NEAR(env.FullScore(), 2.0 / 3.0, 1e-6);
}

TEST(GslEnvTest, StateReflectsSelectionAndCoverage) {
  ActionSpace space = MakeToySpace();
  GslEnv env(&space, 0);
  util::Rng rng(3);
  env.Reset(0, &rng);
  env.Step(1);
  const auto& s = env.state();
  EXPECT_FLOAT_EQ(s[1], 1.0f);              // selected bit
  EXPECT_FLOAT_EQ(s[0], 0.0f);
  EXPECT_FLOAT_EQ(s[12 + 1], 1.0f);         // query 1 coverage ratio
  EXPECT_FLOAT_EQ(s[12 + 0], 0.0f);
  EXPECT_NEAR(s[12 + 3], 1.0f - 2.0f / 6.0f, 1e-6f);  // budget fraction
}

TEST(GslEnvTest, BatchRotationChangesRewardBasis) {
  ActionSpace space = MakeToySpace();
  GslEnv env(&space, /*batch_size=*/1);
  util::Rng rng(4);
  env.Reset(0, &rng);  // batch = {query 0}
  EXPECT_NEAR(env.Step(0).reward, 1.0, 1e-6);
  env.Reset(1, &rng);  // batch = {query 1}
  EXPECT_NEAR(env.Step(0).reward, 0.0, 1e-6);
  EXPECT_NEAR(env.Step(1).reward, 1.0, 1e-6);
}

TEST(DrpEnvTest, SwapKeepsBudgetAndAlternatesPhases) {
  ActionSpace space = MakeToySpace();
  DrpEnv env(&space, 0, /*horizon=*/5);
  util::Rng rng(5);
  env.Reset(0, &rng);
  const size_t initial = env.SelectedActions().size();
  EXPECT_EQ(initial, 3u);  // budget 6 / cost 2

  // Remove phase: only selected actions are valid.
  size_t valid = 0;
  size_t a_remove = 0;
  for (size_t i = 0; i < env.action_mask().size(); ++i) {
    if (env.action_mask()[i]) {
      ++valid;
      a_remove = i;
    }
  }
  EXPECT_EQ(valid, 3u);
  StepResult r1 = env.Step(a_remove);
  EXPECT_FALSE(r1.done);
  EXPECT_EQ(env.SelectedActions().size(), 2u);

  // Add phase: the removed action is re-addable ("no change" option).
  EXPECT_EQ(env.action_mask()[a_remove], 1);
  StepResult r2 = env.Step(a_remove);  // no-op swap
  EXPECT_NEAR(r2.reward, 0.0, 1e-6);
  EXPECT_EQ(env.SelectedActions().size(), 3u);
}

TEST(DrpEnvTest, BeneficialSwapGetsPositiveReward) {
  ActionSpace space = MakeToySpace(4);  // budget fits 3 of 4 actions
  DrpEnv env(&space, 0, 8);
  util::Rng rng(7);
  env.Reset(0, &rng);
  auto selected = env.SelectedActions();
  // If the useless action 3 is selected, swapping it for the missing
  // useful action must yield positive reward.
  if (std::find(selected.begin(), selected.end(), 3u) != selected.end()) {
    size_t missing = 0;
    for (size_t a = 0; a < 3; ++a) {
      if (std::find(selected.begin(), selected.end(), a) == selected.end()) {
        missing = a;
      }
    }
    env.Step(3);
    const StepResult r = env.Step(missing);
    EXPECT_GT(r.reward, 0.0);
    EXPECT_NEAR(env.FullScore(), 1.0, 1e-6);
  }
}

TEST(DrpEnvTest, HorizonTerminates) {
  ActionSpace space = MakeToySpace();
  DrpEnv env(&space, 0, 2);
  util::Rng rng(8);
  env.Reset(0, &rng);
  size_t swaps = 0;
  bool done = false;
  while (!done && swaps < 10) {
    // remove any valid, then add any valid
    size_t a = 0;
    for (size_t i = 0; i < env.action_mask().size(); ++i) {
      if (env.action_mask()[i]) a = i;
    }
    done = env.Step(a).done;
    if (done) break;
    for (size_t i = 0; i < env.action_mask().size(); ++i) {
      if (env.action_mask()[i]) a = i;
    }
    done = env.Step(a).done;
    ++swaps;
  }
  EXPECT_TRUE(done);
  EXPECT_LE(swaps, 2u);
}

TEST(HybridEnvTest, GrowsThenRefines) {
  ActionSpace space = MakeToySpace();
  HybridEnv env(&space, 0, /*refine_horizon=*/2);
  util::Rng rng(9);
  env.Reset(0, &rng);
  // Grow to budget: 3 adds.
  env.Step(3);
  env.Step(4);
  StepResult r = env.Step(5);
  EXPECT_FALSE(r.done);
  EXPECT_EQ(env.SelectedActions().size(), 3u);
  // Now refining: mask covers only selected (remove phase).
  size_t valid = 0;
  for (uint8_t m : env.action_mask()) valid += m;
  EXPECT_EQ(valid, 3u);
  // Swap useless 3 for useful 0: positive reward.
  env.Step(3);
  StepResult add = env.Step(0);
  EXPECT_GT(add.reward, 0.0);
  EXPECT_EQ(env.SelectedActions().size(), 3u);
}

TEST(RolloutBufferTest, GaeMatchesHandComputation) {
  RolloutBuffer buf;
  // Single 2-step episode: r = {1, 0}, V = {0.5, 0.25}.
  buf.rewards = {1.0f, 0.0f};
  buf.values = {0.5f, 0.25f};
  buf.dones = {0, 1};
  buf.actions = {0, 0};
  buf.ComputeAdvantages(/*gamma=*/1.0, /*lambda=*/1.0);
  // delta1 = 0 + 0 - 0.25 = -0.25 ; adv1 = -0.25
  // delta0 = 1 + 0.25 - 0.5 = 0.75 ; adv0 = 0.75 + (-0.25) = 0.5
  EXPECT_NEAR(buf.advantages[1], -0.25f, 1e-6f);
  EXPECT_NEAR(buf.advantages[0], 0.5f, 1e-6f);
  EXPECT_NEAR(buf.returns[0], 1.0f, 1e-6f);
  EXPECT_NEAR(buf.returns[1], 0.0f, 1e-6f);
}

TEST(RolloutBufferTest, ReturnsToGoResetAtEpisodeBoundaries) {
  RolloutBuffer buf;
  buf.rewards = {1.0f, 2.0f, 3.0f};
  buf.values = {0.0f, 0.0f, 0.0f};
  buf.dones = {0, 1, 1};  // two episodes: {1,2}, {3}
  buf.actions = {0, 0, 0};
  buf.ComputeReturnsToGo(/*gamma=*/0.5);
  EXPECT_NEAR(buf.returns[0], 2.0f, 1e-6f);  // 1 + 0.5*2
  EXPECT_NEAR(buf.returns[1], 2.0f, 1e-6f);
  EXPECT_NEAR(buf.returns[2], 3.0f, 1e-6f);
}

TEST(RolloutBufferTest, NormalizeAdvantages) {
  RolloutBuffer buf;
  buf.advantages = {1.0f, 3.0f};
  buf.NormalizeAdvantages();
  EXPECT_NEAR(buf.advantages[0] + buf.advantages[1], 0.0f, 1e-5f);
  EXPECT_NEAR(buf.advantages[1], 1.0f, 1e-5f);
}

TEST(PolicyTest, ActRespectsMaskAndClone) {
  Policy p = Policy::Create(/*state_dim=*/8, /*action_count=*/4,
                            /*hidden=*/16, /*with_critic=*/true, 3);
  util::Rng rng(1);
  const std::vector<float> state(8, 0.5f);
  const std::vector<uint8_t> mask = {0, 1, 0, 1};
  for (int i = 0; i < 50; ++i) {
    const auto act = p.Act(state, mask, &rng);
    EXPECT_TRUE(act.action == 1 || act.action == 3);
  }
  Policy q = p.Clone();
  const auto a1 = p.Act(state, mask, &rng, /*greedy=*/true);
  const auto a2 = q.Act(state, mask, &rng, /*greedy=*/true);
  EXPECT_EQ(a1.action, a2.action);
  EXPECT_FLOAT_EQ(a1.value, a2.value);
}

double RandomBaselineScore(const ActionSpace& space, uint64_t seed) {
  GslEnv env(&space, 0);
  util::Rng rng(seed);
  env.Reset(0, &rng);
  while (true) {
    std::vector<size_t> valid;
    for (size_t i = 0; i < env.action_mask().size(); ++i) {
      if (env.action_mask()[i]) valid.push_back(i);
    }
    if (valid.empty()) break;
    if (env.Step(valid[rng.NextBounded(valid.size())]).done) break;
  }
  return env.FullScore();
}

class TrainAlgoTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(TrainAlgoTest, LearnsToySpaceBetterThanRandom) {
  // 24 actions, only 3 useful: a trained policy must reliably pick the
  // useful ones while random selection mostly cannot.
  ActionSpace space = MakeToySpace(24);
  TrainerConfig config;
  config.algorithm = GetParam();
  config.iterations = 40;
  config.episodes_per_iteration = 8;
  config.num_workers = 2;
  config.learning_rate = 3e-3;
  config.hidden_dim = 32;
  config.seed = 7;
  EnvFactory factory = [&space] {
    return std::make_unique<GslEnv>(&space, 0);
  };
  ASSERT_OK_AND_ASSIGN(TrainResult result, Train(factory, config));
  EXPECT_EQ(result.iterations_run, 40u);
  EXPECT_GT(result.episodes_run, 0u);

  GslEnv eval_env(&space, 0);
  RunPolicy(&eval_env, result.policy, /*seed=*/99, /*greedy=*/true);
  const double trained = eval_env.FullScore();

  double random_avg = 0.0;
  for (uint64_t s = 0; s < 10; ++s) random_avg += RandomBaselineScore(space, s);
  random_avg /= 10.0;

  EXPECT_GT(trained, random_avg + 0.15)
      << "algorithm " << AlgorithmName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, TrainAlgoTest,
                         ::testing::Values(Algorithm::kPpo, Algorithm::kA2c,
                                           Algorithm::kReinforce));

TEST(TrainTest, EarlyStoppingCutsIterations) {
  ActionSpace space = MakeToySpace(6);
  TrainerConfig config;
  config.iterations = 100;
  config.episodes_per_iteration = 4;
  config.num_workers = 1;
  config.hidden_dim = 16;
  config.early_stop_patience = 3;
  config.early_stop_min_delta = 1e-4;
  EnvFactory factory = [&space] {
    return std::make_unique<GslEnv>(&space, 0);
  };
  ASSERT_OK_AND_ASSIGN(TrainResult result, Train(factory, config));
  EXPECT_LT(result.iterations_run, 100u);
}

TEST(TrainTest, DeterministicForSeed) {
  ActionSpace space = MakeToySpace(8);
  TrainerConfig config;
  config.iterations = 3;
  config.episodes_per_iteration = 2;
  config.num_workers = 1;  // determinism requires serialized collection
  config.hidden_dim = 16;
  config.seed = 42;
  EnvFactory factory = [&space] {
    return std::make_unique<GslEnv>(&space, 0);
  };
  ASSERT_OK_AND_ASSIGN(TrainResult a, Train(factory, config));
  ASSERT_OK_AND_ASSIGN(TrainResult b, Train(factory, config));
  ASSERT_EQ(a.iteration_scores.size(), b.iteration_scores.size());
  for (size_t i = 0; i < a.iteration_scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.iteration_scores[i], b.iteration_scores[i]);
  }
}

TEST(TrainTest, RejectsEmptyActionSpace) {
  ActionSpace space;  // zero actions
  space.budget = 1;
  EnvFactory factory = [&space] {
    return std::make_unique<GslEnv>(&space, 0);
  };
  EXPECT_FALSE(Train(factory, TrainerConfig{}).ok());
}

}  // namespace
}  // namespace rl
}  // namespace asqp
