#include <gtest/gtest.h>

#include <set>

#include "sample/sampler.h"
#include "tests/testing.h"

namespace asqp {
namespace sample {
namespace {

TEST(UniformSampleTest, SizeAndRange) {
  util::Rng rng(1);
  auto s = UniformSample(100, 10, &rng);
  ASSERT_EQ(s.size(), 10u);
  std::set<size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t i : s) EXPECT_LT(i, 100u);
}

TEST(StratifiedSampleTest, ExactBudgetAndCoverage) {
  // 3 strata with very unequal sizes; sqrt allocation must keep the small
  // stratum represented.
  std::vector<size_t> strata;
  for (int i = 0; i < 900; ++i) strata.push_back(0);
  for (int i = 0; i < 90; ++i) strata.push_back(1);
  for (int i = 0; i < 10; ++i) strata.push_back(2);
  util::Rng rng(2);
  auto s = StratifiedSample(strata, 3, 50, &rng);
  ASSERT_EQ(s.size(), 50u);
  std::set<size_t> seen_strata;
  for (size_t i : s) seen_strata.insert(strata[i]);
  EXPECT_EQ(seen_strata.size(), 3u);
  // sqrt allocation: stratum 0 gets fewer than its proportional 45 slots
  // relative to uniform, stratum 2 gets more than its proportional 0.5.
  size_t from_small = 0;
  for (size_t i : s) {
    if (strata[i] == 2) ++from_small;
  }
  EXPECT_GE(from_small, 2u);
}

TEST(StratifiedSampleTest, TargetLargerThanPopulation) {
  std::vector<size_t> strata = {0, 0, 1};
  util::Rng rng(3);
  auto s = StratifiedSample(strata, 2, 10, &rng);
  EXPECT_EQ(s.size(), 3u);
}

TEST(StratifiedSampleTest, EmptyInputs) {
  util::Rng rng(4);
  EXPECT_TRUE(StratifiedSample({}, 3, 10, &rng).empty());
  EXPECT_TRUE(StratifiedSample({0, 1}, 2, 0, &rng).empty());
}

TEST(StratifiedSampleTest, SortedDistinctOutput) {
  std::vector<size_t> strata(200);
  for (size_t i = 0; i < strata.size(); ++i) strata[i] = i % 4;
  util::Rng rng(5);
  auto s = StratifiedSample(strata, 4, 60, &rng);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  std::set<size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), s.size());
}

TEST(VariationalSubsampleTest, CoversAllLatentStrata) {
  // Two tight, well-separated clusters of very different sizes: the
  // variational sampler must keep both represented.
  util::Rng rng(6);
  std::vector<embed::Vector> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back({static_cast<float>(rng.Normal(0.0, 0.1)),
                      static_cast<float>(rng.Normal(0.0, 0.1))});
  }
  for (int i = 0; i < 20; ++i) {
    points.push_back({static_cast<float>(rng.Normal(50.0, 0.1)),
                      static_cast<float>(rng.Normal(50.0, 0.1))});
  }
  VariationalOptions opts;
  opts.num_strata = 2;
  ASSERT_OK_AND_ASSIGN(auto sample, VariationalSubsample(points, 40, opts));
  ASSERT_EQ(sample.size(), 40u);
  size_t from_rare = 0;
  for (size_t i : sample) {
    if (i >= 500) ++from_rare;
  }
  // Uniform sampling would expect ~1.5 rare points; sqrt allocation gives
  // substantially more.
  EXPECT_GE(from_rare, 4u);
}

TEST(VariationalSubsampleTest, TargetGeqPoolReturnsAll) {
  std::vector<embed::Vector> points = {{0.0f}, {1.0f}, {2.0f}};
  ASSERT_OK_AND_ASSIGN(auto sample, VariationalSubsample(points, 10));
  EXPECT_EQ(sample.size(), 3u);
}

TEST(VariationalSubsampleTest, EmptyPoolIsError) {
  EXPECT_FALSE(VariationalSubsample({}, 5).ok());
}

TEST(VariationalSubsampleTest, DeterministicForSeed) {
  util::Rng rng(8);
  std::vector<embed::Vector> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back({static_cast<float>(rng.UniformDouble()),
                      static_cast<float>(rng.UniformDouble())});
  }
  VariationalOptions opts;
  opts.seed = 99;
  ASSERT_OK_AND_ASSIGN(auto a, VariationalSubsample(points, 20, opts));
  ASSERT_OK_AND_ASSIGN(auto b, VariationalSubsample(points, 20, opts));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sample
}  // namespace asqp
