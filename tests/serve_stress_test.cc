// Concurrent serving stress, designed to run under -DASQP_SANITIZE=thread:
// >= 8 mediator sessions hammer one ServeEngine (mixed repeat queries,
// equivalent spellings, out-of-distribution drift recorders) while a
// monitor asserts the process-wide execution-thread cap is never
// exceeded, and a FineTune races in-flight Answers through the engine's
// writer lock. Iteration counts scale down under TSan
// (ASQP_SANITIZE_THREAD) to keep the suite fast despite the sanitizer's
// slowdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "data/dataset.h"
#include "serve/serve_engine.h"
#include "tests/testing.h"
#include "util/fault_injector.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace asqp {
namespace serve {
namespace {

#ifdef ASQP_SANITIZE_THREAD
constexpr int kPerSessionQueries = 8;
#else
constexpr int kPerSessionQueries = 30;
#endif

constexpr size_t kSessions = 8;

class ServeStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetOptions opts;
    opts.scale = 0.05;
    opts.workload_size = 16;
    opts.seed = 7;
    // Suite fixture: paired with delete in TearDownTestSuite.
    bundle_ = new data::DatasetBundle(data::MakeImdbJob(opts));  // NOLINT(asqp-naked-new)

    core::AsqpConfig config;
    config.k = 300;
    config.frame_size = 25;
    config.num_representatives = 10;
    config.pool_target = 400;
    config.trainer.iterations = 6;
    config.trainer.episodes_per_iteration = 4;
    config.trainer.num_workers = 1;
    config.trainer.learning_rate = 2e-3;
    config.trainer.hidden_dim = 64;
    config.seed = 3;
    core::AsqpTrainer trainer(config);
    auto report = trainer.Train(*bundle_->db, bundle_->workload);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    model_ = std::move(report.value().model);
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete bundle_;  // NOLINT(asqp-naked-new)
    bundle_ = nullptr;
  }

  static data::DatasetBundle* bundle_;
  static std::unique_ptr<core::AsqpModel> model_;
};

data::DatasetBundle* ServeStressTest::bundle_ = nullptr;
std::unique_ptr<core::AsqpModel> ServeStressTest::model_ = nullptr;

/// The session query mix: [i][0] is the canonical spelling, further
/// entries are equivalent respellings that must hit the same cache entry.
/// The person-table queries are out-of-distribution, so every execution
/// also exercises the model's concurrent drift recording.
const std::vector<std::vector<std::string>>& QueryMix() {
  static const std::vector<std::vector<std::string>> mix = {
      {"SELECT t.name FROM title t WHERE t.production_year >= 2005",
       "SELECT x.name FROM title x WHERE 2005 <= x.production_year"},
      {"SELECT t.name, ci.role FROM title t, cast_info ci "
       "WHERE ci.movie_id = t.id AND t.rating > 7",
       "SELECT a.name, b.role FROM title a, cast_info b "
       "WHERE a.rating > 7.0 AND a.id = b.movie_id"},
      {"SELECT p.name FROM person p WHERE p.birth_year > 1980"},
      {"SELECT t.production_year, COUNT(*) FROM title t "
       "GROUP BY t.production_year"},
  };
  return mix;
}

TEST_F(ServeStressTest, EightSessionsShareOnePoolAndOneCache) {
  ServeOptions options;
  options.max_inflight = 3;
  options.queue_capacity = kSessions;  // nobody is rejected in this test
  options.pool_threads = 2;
  options.cache_bytes = 8 << 20;
  options.cache_shards = 4;
  ServeEngine engine(model_.get(), options);

  // Monitor: the process-wide execution-thread count must never exceed
  // the shared pool's cap — that is the whole point of pool sharing (no
  // N-sessions * num_threads explosion).
  std::atomic<bool> stop{false};
  std::atomic<size_t> max_live{0};
  std::thread monitor([&stop, &max_live] {
    while (!stop.load(std::memory_order_relaxed)) {
      size_t live = util::ThreadPool::LiveWorkerCount();
      size_t seen = max_live.load(std::memory_order_relaxed);
      while (live > seen &&
             !max_live.compare_exchange_weak(seen, live,
                                             std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // First-seen row keys per query index; every later success must match.
  std::mutex expected_mu;
  std::map<size_t, std::vector<std::string>> expected;
  std::atomic<uint64_t> successes{0};
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> sessions;
  sessions.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([s, &engine, &expected_mu, &expected, &successes,
                           &failures] {
      const auto& mix = QueryMix();
      for (int iter = 0; iter < kPerSessionQueries; ++iter) {
        const size_t q = (s + static_cast<size_t>(iter)) % mix.size();
        const std::vector<std::string>& spellings = mix[q];
        const std::string& sql =
            spellings[static_cast<size_t>(iter) % spellings.size()];
        auto result = engine.AnswerSql(sql);
        if (!result.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          ADD_FAILURE() << "session " << s << ": "
                        << result.status().ToString();
          continue;
        }
        successes.fetch_add(1, std::memory_order_relaxed);
        std::vector<std::string> keys;
        keys.reserve(result.value().result.num_rows());
        for (size_t r = 0; r < result.value().result.num_rows(); ++r) {
          keys.push_back(result.value().result.RowKey(r));
        }
        std::lock_guard<std::mutex> lock(expected_mu);
        auto it = expected.find(q);
        if (it == expected.end()) {
          expected.emplace(q, std::move(keys));
        } else {
          EXPECT_EQ(it->second, keys) << "query " << q << " diverged";
        }
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  stop.store(true, std::memory_order_relaxed);
  monitor.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(successes.load(), kSessions * kPerSessionQueries);
  // The cap held: only the shared pool's workers ever existed.
  EXPECT_LE(max_live.load(), options.pool_threads);

  ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.served, successes.load());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.admission_expired, 0u);
  // Repeat queries hit: with 4 distinct queries and 8 * N requests, the
  // vast majority must come from the cache.
  EXPECT_GT(stats.cache_hits, successes.load() / 2);
  EXPECT_EQ(stats.cache_hits + stats.admitted, stats.served);
  // Out-of-distribution person queries recorded drift concurrently.
  EXPECT_GT(model_->drifted_query_count(), 0u);
}

TEST_F(ServeStressTest, OverloadedQueueRejectsInsteadOfCrashing) {
  ServeOptions options;
  options.max_inflight = 1;
  options.queue_capacity = 1;  // 8 sessions into 2 slots: most are rejected
  options.pool_threads = 1;
  options.cache_bytes = 0;  // force every request through admission
  ServeEngine engine(model_.get(), options);

  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> sessions;
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&engine, &ok_count, &rejected] {
      for (int iter = 0; iter < kPerSessionQueries / 2; ++iter) {
        auto result = engine.AnswerSql(
            "SELECT t.name, ci.role FROM title t, cast_info ci "
            "WHERE ci.movie_id = t.id AND t.production_year >= 2000");
        if (result.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(result.status().code(),
                    util::StatusCode::kResourceExhausted)
              << result.status().ToString();
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : sessions) t.join();

  EXPECT_GT(ok_count.load(), 0u);
  ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.served, ok_count.load());
}

TEST_F(ServeStressTest, FineTuneRacesInFlightAnswers) {
  ServeOptions options;
  options.max_inflight = 4;
  options.queue_capacity = 2 * kSessions;
  options.pool_threads = 2;
  options.cache_bytes = 8 << 20;
  ServeEngine engine(model_.get(), options);

  ASSERT_OK_AND_ASSIGN(
      metric::Workload drift,
      metric::Workload::FromSql(
          {"SELECT p.name FROM person p WHERE p.birth_year > 1975",
           "SELECT p.name, p.birth_year FROM person p "
           "WHERE p.birth_year < 1955"}));

  const uint64_t generation_before = model_->generation();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> sessions;
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([s, &engine, &stop, &answered] {
      const auto& mix = QueryMix();
      size_t iter = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& spellings = mix[(s + iter) % mix.size()];
        auto result = engine.AnswerSql(spellings[iter % spellings.size()]);
        // Admission rejections are acceptable under this load; data races
        // and deadlocks are what this test exists to catch.
        if (result.ok()) answered.fetch_add(1, std::memory_order_relaxed);
        ++iter;
      }
    });
  }

  // Let the sessions reach a steady state, then retrain underneath them:
  // FineTune's writer lock drains in-flight Answers, swaps the model, and
  // flushes the cache while the sessions keep arriving.
  while (answered.load(std::memory_order_relaxed) < kSessions) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_OK(engine.FineTune(drift));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : sessions) t.join();

  EXPECT_GT(model_->generation(), generation_before);
  // Entries cached at the old generation were dropped (eagerly by the
  // FineTune sweep, or lazily by a session's racing lookup).
  EXPECT_GT(engine.cache().stats().invalidations, 0u);
  // The engine still serves and re-warms against the new approximation
  // set. (The first answer here may already be a hit: sessions kept
  // serving after FineTune returned and refill the cache at the new
  // generation.)
  ASSERT_OK_AND_ASSIGN(core::AnswerResult again,
                       engine.AnswerSql(QueryMix()[0][0]));
  (void)again;
  ASSERT_OK_AND_ASSIGN(core::AnswerResult warm,
                       engine.AnswerSql(QueryMix()[0][0]));
  EXPECT_TRUE(warm.from_cache);
}

TEST_F(ServeStressTest, ChaosOverloadNeverLeaksRawTimeoutsToClients) {
  // The degradation contract under chaos: 4x the admission capacity, a
  // tight live deadline per request, the cache disabled (every request
  // pays admission + execution), and faults armed on every execution
  // point this path can reach — every deadline check lies, every join
  // build and partial-aggregation allocation fails. Every client must
  // still get an answer (possibly from a degraded tier, with an error
  // estimate) or a *typed* degradation: kDegraded, queue-full
  // kResourceExhausted back-pressure, or the dead-on-arrival fast-path
  // rejection. A raw deadline/cancellation from inside the ladder must
  // never reach a client.
  util::FaultInjector::Global().Reset();
  util::FaultInjector::Global().Arm("exec.deadline", /*count=*/-1);
  util::FaultInjector::Global().Arm("exec.join.alloc", /*count=*/-1);
  util::FaultInjector::Global().Arm("exec.agg.partial", /*count=*/-1);

#ifdef ASQP_SANITIZE_THREAD
  const double kDeadlineSeconds = 0.25;
#else
  const double kDeadlineSeconds = 0.05;
#endif

  ServeOptions options;
  options.max_inflight = 2;
  options.queue_capacity = 2;  // 8 sessions into 4 slots: 4x overload
  options.pool_threads = 2;
  options.cache_bytes = 0;
  ServeEngine engine(model_.get(), options);

  // One spelling per shape: a single-table SPJ (the full-database tier
  // can still answer it), a join (every tier below the learned one is
  // fault-poisoned, and a join is outside the learned class — ends in
  // kDegraded), and a learned-class aggregate (sheddable).
  const std::vector<std::string> chaos_mix = {
      "SELECT t.name FROM title t WHERE t.production_year >= 2005",
      "SELECT t.name, ci.role FROM title t, cast_info ci "
      "WHERE ci.movie_id = t.id AND t.rating > 7",
      "SELECT COUNT(*) FROM title t WHERE t.production_year >= 2000",
  };

  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> degraded_count{0};
  std::atomic<uint64_t> backpressure_count{0};
  std::atomic<uint64_t> dead_on_arrival{0};
  std::atomic<uint64_t> contract_violations{0};
  std::mutex violations_mu;
  std::vector<std::string> violations;

  std::vector<std::thread> sessions;
  sessions.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([s, &engine, &chaos_mix, &ok_count,
                           &degraded_count, &backpressure_count,
                           &dead_on_arrival, &contract_violations,
                           &violations_mu, &violations,
                           kDeadlineSeconds] {
      for (int iter = 0; iter < kPerSessionQueries; ++iter) {
        const std::string& sql =
            chaos_mix[(s + static_cast<size_t>(iter)) % chaos_mix.size()];
        util::ExecContext context;
        context.set_deadline(util::Deadline::AfterSeconds(kDeadlineSeconds));
        auto result = engine.AnswerSql(sql, context);
        if (result.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
          // A learned-tier answer always carries its calibrated bound.
          if (result.value().tier == core::AnswerTier::kLearned) {
            EXPECT_GT(result.value().error_estimate, 0.0);
            EXPECT_TRUE(result.value().fell_back);
          }
          continue;
        }
        const util::Status& failure = result.status();
        switch (failure.code()) {
          case util::StatusCode::kDegraded:
            degraded_count.fetch_add(1, std::memory_order_relaxed);
            break;
          case util::StatusCode::kResourceExhausted:
            backpressure_count.fetch_add(1, std::memory_order_relaxed);
            break;
          case util::StatusCode::kDeadlineExceeded:
            // Only the typed dead-on-arrival fast path may surface this;
            // a deadline from inside the ladder is a contract violation.
            if (failure.message().find("on arrival") != std::string::npos) {
              dead_on_arrival.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            [[fallthrough]];
          default: {
            contract_violations.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(violations_mu);
            violations.push_back(failure.ToString());
          }
        }
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  util::FaultInjector::Global().Reset();
  // Chaos may have tripped the full-database breaker; close it so later
  // tests see a healthy ladder.
  model_->circuit_breaker().RecordSuccess();

  std::string violation_digest;
  for (const std::string& v : violations) {
    violation_digest += "\n  " + v;
  }
  EXPECT_EQ(contract_violations.load(), 0u) << violation_digest;
  const uint64_t total = ok_count.load() + degraded_count.load() +
                         backpressure_count.load() + dead_on_arrival.load() +
                         contract_violations.load();
  EXPECT_EQ(total, kSessions * kPerSessionQueries);
  // The chaos was real: faults forced answers off the approximation tier,
  // and some clients were served anyway.
  EXPECT_GT(ok_count.load(), 0u);
  EXPECT_GT(degraded_count.load() + backpressure_count.load() +
                engine.stats().shed_learned + engine.stats().degraded,
            0u);
  EXPECT_EQ(engine.stats().served, ok_count.load());

  // The engine recovers once the faults are gone: a healthy query on a
  // fresh deadline is answered normally.
  util::ExecContext healthy;
  healthy.set_deadline(util::Deadline::AfterSeconds(30.0));
  ASSERT_OK_AND_ASSIGN(core::AnswerResult after,
                       engine.AnswerSql(chaos_mix[0], healthy));
  EXPECT_FALSE(after.from_cache);
}

TEST_F(ServeStressTest, BatchedSessionsAgreeWithUnbatchedAnswers) {
  // Reference answers from an unbatched engine (single-threaded, one
  // engine at a time: each engine re-routes the model's pool).
  std::map<size_t, std::vector<std::string>> expected;
  {
    ServeOptions plain;
    plain.max_inflight = 2;
    plain.queue_capacity = kSessions;
    plain.pool_threads = 2;
    plain.cache_bytes = 0;
    ServeEngine reference(model_.get(), plain);
    const auto& mix = QueryMix();
    for (size_t q = 0; q < mix.size(); ++q) {
      auto result = reference.AnswerSql(mix[q][0]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      std::vector<std::string> keys;
      for (size_t r = 0; r < result.value().result.num_rows(); ++r) {
        keys.push_back(result.value().result.RowKey(r));
      }
      expected.emplace(q, std::move(keys));
    }
  }

  // Batched + async engine under 8 concurrent sessions: every answer —
  // shared-scan batched, deduplicated, or cached — must be byte-identical
  // to the unbatched reference.
  ServeOptions options;
  options.max_inflight = 3;
  // Every session pipelines its whole script as outstanding futures, so
  // the ticket queue must hold the full burst — back-pressure behavior is
  // OverloadedQueueRejectsInsteadOfCrashing's job, not this test's.
  options.queue_capacity = kSessions * kPerSessionQueries;
  options.pool_threads = 2;
  options.cache_bytes = 8 << 20;
  options.cache_shards = 4;
  options.batch_window_ms = 1.0;
  options.batch_max_queries = 4;
  ServeEngine engine(model_.get(), options);

  std::atomic<uint64_t> successes{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> sessions;
  sessions.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([s, &engine, &expected, &successes, &mismatches] {
      const auto& mix = QueryMix();
      CompletionQueue queue;
      for (int iter = 0; iter < kPerSessionQueries; ++iter) {
        const size_t q = (s + static_cast<size_t>(iter)) % mix.size();
        const std::vector<std::string>& spellings = mix[q];
        const std::string& sql =
            spellings[static_cast<size_t>(iter) % spellings.size()];
        queue.Track(engine.AnswerSqlAsync(sql), q);
      }
      while (auto done = queue.Next()) {
        if (!done->result.ok()) {
          ADD_FAILURE() << "session " << s << ": "
                        << done->result.status().ToString();
          continue;
        }
        successes.fetch_add(1, std::memory_order_relaxed);
        const exec::ResultSet& rs = done->result.value().result;
        std::vector<std::string> keys;
        keys.reserve(rs.num_rows());
        for (size_t r = 0; r < rs.num_rows(); ++r) {
          keys.push_back(rs.RowKey(r));
        }
        if (keys != expected.at(done->tag)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          ADD_FAILURE() << "query " << done->tag
                        << " diverged from the unbatched reference";
        }
      }
    });
  }
  for (std::thread& t : sessions) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(successes.load(), kSessions * kPerSessionQueries);
  ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.served, successes.load());
  EXPECT_GE(stats.batches_formed, 1u);
  // Dedup + shared scans did real work under this mix (equivalent
  // spellings and same-table predicates collide constantly).
  EXPECT_GT(stats.shared_scan_saved + stats.cache_hits, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(ServeStressTest, BatchedChaosKeepsTheDegradationContract) {
  // The ChaosOverloadNeverLeaksRawTimeoutsToClients contract, re-run
  // through the batched/async path with the serve.batch fault armed on
  // every poll: every batched member is forced off the shared-scan tier
  // and down the ladder, yet every client still gets an answer or a typed
  // degradation — never a raw timeout, and never an unresolved future.
  util::FaultInjector::Global().Reset();
  util::FaultInjector::Global().Arm("exec.deadline", /*count=*/-1);
  util::FaultInjector::Global().Arm("exec.join.alloc", /*count=*/-1);
  util::FaultInjector::Global().Arm("exec.agg.partial", /*count=*/-1);
  util::FaultInjector::Global().Arm("serve.batch", /*count=*/-1);

#ifdef ASQP_SANITIZE_THREAD
  const double kDeadlineSeconds = 0.25;
#else
  const double kDeadlineSeconds = 0.05;
#endif

  ServeOptions options;
  options.max_inflight = 2;
  options.queue_capacity = 4;
  options.pool_threads = 2;
  options.cache_bytes = 0;
  options.batch_window_ms = 1.0;
  options.batch_max_queries = 4;
  ServeEngine engine(model_.get(), options);

  const std::vector<std::string> chaos_mix = {
      "SELECT t.name FROM title t WHERE t.production_year >= 2005",
      "SELECT t.name, ci.role FROM title t, cast_info ci "
      "WHERE ci.movie_id = t.id AND t.rating > 7",
      "SELECT COUNT(*) FROM title t WHERE t.production_year >= 2000",
  };

  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> typed_failures{0};
  std::atomic<uint64_t> contract_violations{0};
  std::mutex violations_mu;
  std::vector<std::string> violations;

  std::vector<std::thread> sessions;
  sessions.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([s, &engine, &chaos_mix, &ok_count,
                           &typed_failures, &contract_violations,
                           &violations_mu, &violations, kDeadlineSeconds] {
      for (int iter = 0; iter < kPerSessionQueries; ++iter) {
        const std::string& sql =
            chaos_mix[(s + static_cast<size_t>(iter)) % chaos_mix.size()];
        util::ExecContext context;
        context.set_deadline(util::Deadline::AfterSeconds(kDeadlineSeconds));
        util::Result<core::AnswerResult> result =
            engine.AnswerSqlAsync(sql, context).Get();
        if (result.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const util::Status& failure = result.status();
        const bool typed =
            failure.code() == util::StatusCode::kDegraded ||
            failure.code() == util::StatusCode::kResourceExhausted ||
            (failure.code() == util::StatusCode::kDeadlineExceeded &&
             failure.message().find("on arrival") != std::string::npos);
        if (typed) {
          typed_failures.fetch_add(1, std::memory_order_relaxed);
        } else {
          contract_violations.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(violations_mu);
          violations.push_back(failure.ToString());
        }
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  util::FaultInjector::Global().Reset();
  model_->circuit_breaker().RecordSuccess();

  std::string violation_digest;
  for (const std::string& v : violations) {
    violation_digest += "\n  " + v;
  }
  EXPECT_EQ(contract_violations.load(), 0u) << violation_digest;
  EXPECT_EQ(ok_count.load() + typed_failures.load() +
                contract_violations.load(),
            kSessions * kPerSessionQueries);
  EXPECT_GT(ok_count.load(), 0u);
  // Chaos really flowed through the batched tier.
  EXPECT_GE(engine.stats().batches_formed, 1u);

  // Healthy again once the faults are gone.
  util::ExecContext healthy;
  healthy.set_deadline(util::Deadline::AfterSeconds(30.0));
  util::Result<core::AnswerResult> after =
      engine.AnswerSqlAsync(chaos_mix[0], healthy).Get();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

}  // namespace
}  // namespace serve
}  // namespace asqp
