// Serving-layer tests: AnswerCache unit behavior (LRU, byte budget,
// generations, collisions) and ServeEngine end-to-end on a trained model
// (cache hits byte-identical to executions, equivalent spellings share an
// entry, FineTune invalidates, shared-pool answers identical at every
// pool size).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/dataset.h"
#include "serve/answer_cache.h"
#include "serve/serve_engine.h"
#include "sql/canonicalize.h"
#include "tests/testing.h"
#include "util/exec_context.h"

namespace asqp {
namespace serve {
namespace {

// ---- AnswerCache unit tests -------------------------------------------

core::AnswerResult MakeAnswer(const std::string& tag, size_t rows) {
  exec::ResultSet rs({"tag", "n"});
  for (size_t i = 0; i < rows; ++i) {
    rs.mutable_rows().push_back(
        {storage::Value(tag), storage::Value(static_cast<int64_t>(i))});
  }
  core::AnswerResult result;
  result.result = std::move(rs);
  result.used_approximation = true;
  result.answerability = 0.5;
  return result;
}

sql::QueryFingerprint MakeFp(uint64_t hash, const std::string& canonical) {
  sql::QueryFingerprint fp;
  fp.hash = hash;
  fp.canonical = canonical;
  return fp;
}

TEST(AnswerCacheTest, LookupReturnsInsertedAnswer) {
  AnswerCache cache(1 << 20, /*num_shards=*/2);
  const sql::QueryFingerprint fp = MakeFp(42, "q1");
  EXPECT_EQ(cache.Lookup(fp, 0), nullptr);
  cache.Insert(fp, 0, MakeAnswer("a", 3));
  auto hit = cache.Lookup(fp, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result.num_rows(), 3u);
  AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(AnswerCacheTest, StaleGenerationInvalidatesLazily) {
  AnswerCache cache(1 << 20, 1);
  const sql::QueryFingerprint fp = MakeFp(7, "q");
  cache.Insert(fp, /*generation=*/0, MakeAnswer("a", 2));
  // A lookup at a newer generation must miss AND erase the stale entry.
  EXPECT_EQ(cache.Lookup(fp, 1), nullptr);
  AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(AnswerCacheTest, InvalidateOlderThanSweepsEagerly) {
  AnswerCache cache(1 << 20, 4);
  for (uint64_t h = 0; h < 8; ++h) {
    cache.Insert(MakeFp(h, "q" + std::to_string(h)), /*generation=*/0,
                 MakeAnswer("a", 1));
  }
  cache.Insert(MakeFp(100, "fresh"), /*generation=*/1, MakeAnswer("b", 1));
  cache.InvalidateOlderThan(1);
  AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.invalidations, 8u);
  EXPECT_NE(cache.Lookup(MakeFp(100, "fresh"), 1), nullptr);
}

TEST(AnswerCacheTest, HashCollisionWithDifferentCanonicalMisses) {
  AnswerCache cache(1 << 20, 1);
  cache.Insert(MakeFp(5, "canonical-a"), 0, MakeAnswer("a", 1));
  EXPECT_EQ(cache.Lookup(MakeFp(5, "canonical-b"), 0), nullptr);
  EXPECT_EQ(cache.stats().hash_collisions, 1u);
  // The original entry is untouched.
  EXPECT_NE(cache.Lookup(MakeFp(5, "canonical-a"), 0), nullptr);
}

TEST(AnswerCacheTest, EvictsLruUnderByteBudget) {
  const size_t one_bytes = EstimateAnswerBytes(MakeAnswer("x", 4));
  // Room for ~3 entries in a single shard.
  AnswerCache cache(3 * one_bytes + one_bytes / 2, 1);
  cache.Insert(MakeFp(1, "q1"), 0, MakeAnswer("x", 4));
  cache.Insert(MakeFp(2, "q2"), 0, MakeAnswer("x", 4));
  cache.Insert(MakeFp(3, "q3"), 0, MakeAnswer("x", 4));
  // Touch q1 so q2 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(MakeFp(1, "q1"), 0), nullptr);
  cache.Insert(MakeFp(4, "q4"), 0, MakeAnswer("x", 4));
  AnswerCache::Stats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, cache.byte_budget());
  EXPECT_EQ(cache.Lookup(MakeFp(2, "q2"), 0), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(MakeFp(1, "q1"), 0), nullptr);  // kept (recent)
  EXPECT_NE(cache.Lookup(MakeFp(4, "q4"), 0), nullptr);
}

TEST(AnswerCacheTest, OversizedAnswerIsNotCached) {
  AnswerCache cache(256, 1);  // smaller than any realistic answer
  cache.Insert(MakeFp(1, "big"), 0, MakeAnswer("x", 100));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Lookup(MakeFp(1, "big"), 0), nullptr);
}

TEST(AnswerCacheTest, ZeroBudgetDisablesCaching) {
  AnswerCache cache(0, 4);
  cache.Insert(MakeFp(1, "q"), 0, MakeAnswer("x", 1));
  EXPECT_EQ(cache.Lookup(MakeFp(1, "q"), 0), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(AnswerCacheTest, ReplaceSameFingerprintKeepsOneEntry) {
  AnswerCache cache(1 << 20, 1);
  cache.Insert(MakeFp(9, "q"), 0, MakeAnswer("old", 1));
  cache.Insert(MakeFp(9, "q"), 0, MakeAnswer("new", 2));
  auto hit = cache.Lookup(MakeFp(9, "q"), 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result.num_rows(), 2u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(AnswerCacheTest, ClearDropsEverything) {
  AnswerCache cache(1 << 20, 4);
  for (uint64_t h = 0; h < 6; ++h) {
    cache.Insert(MakeFp(h, "q" + std::to_string(h)), 0, MakeAnswer("x", 1));
  }
  cache.Clear();
  AnswerCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

// ---- ServeEngine on a trained model -----------------------------------

class ServeEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::DatasetOptions opts;
    opts.scale = 0.05;
    opts.workload_size = 16;
    opts.seed = 7;
    // Suite fixture: paired with delete in TearDownTestSuite.
    bundle_ = new data::DatasetBundle(data::MakeImdbJob(opts));  // NOLINT(asqp-naked-new)

    core::AsqpConfig config;
    config.k = 300;
    config.frame_size = 25;
    config.num_representatives = 10;
    config.pool_target = 400;
    config.trainer.iterations = 8;
    config.trainer.episodes_per_iteration = 4;
    config.trainer.num_workers = 1;
    config.trainer.learning_rate = 2e-3;
    config.trainer.hidden_dim = 64;
    config.seed = 3;
    core::AsqpTrainer trainer(config);
    auto report = trainer.Train(*bundle_->db, bundle_->workload);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    model_ = std::move(report.value().model);
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete bundle_;  // NOLINT(asqp-naked-new)
    bundle_ = nullptr;
  }

  static ServeOptions SmallServe() {
    ServeOptions options;
    options.max_inflight = 2;
    options.queue_capacity = 8;
    options.pool_threads = 2;
    options.cache_bytes = 4 << 20;
    options.cache_shards = 4;
    return options;
  }

  static std::vector<std::string> Keys(const exec::ResultSet& rs) {
    std::vector<std::string> keys;
    keys.reserve(rs.num_rows());
    for (size_t i = 0; i < rs.num_rows(); ++i) keys.push_back(rs.RowKey(i));
    return keys;
  }

  static data::DatasetBundle* bundle_;
  static std::unique_ptr<core::AsqpModel> model_;
};

data::DatasetBundle* ServeEngineTest::bundle_ = nullptr;
std::unique_ptr<core::AsqpModel> ServeEngineTest::model_ = nullptr;

const char kQuery[] =
    "SELECT t.name, ci.role FROM title t, cast_info ci "
    "WHERE ci.movie_id = t.id AND t.production_year >= 2000";

TEST_F(ServeEngineTest, RepeatQueryIsServedFromCache) {
  ServeEngine engine(model_.get(), SmallServe());
  ASSERT_OK_AND_ASSIGN(core::AnswerResult cold, engine.AnswerSql(kQuery));
  EXPECT_FALSE(cold.from_cache);
  ASSERT_OK_AND_ASSIGN(core::AnswerResult warm, engine.AnswerSql(kQuery));
  EXPECT_TRUE(warm.from_cache);
  // Byte-identical: same column names, same rows in the same order.
  EXPECT_EQ(warm.result.column_names(), cold.result.column_names());
  EXPECT_EQ(Keys(warm.result), Keys(cold.result));
  EXPECT_EQ(warm.used_approximation, cold.used_approximation);
  ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.admitted, 1u);  // the hit never took a slot
}

TEST_F(ServeEngineTest, EquivalentSpellingsShareOneEntry) {
  ServeEngine engine(model_.get(), SmallServe());
  ASSERT_OK_AND_ASSIGN(core::AnswerResult first,
                       engine.AnswerSql(
                           "SELECT t.name, ci.role FROM title t, cast_info ci "
                           "WHERE ci.movie_id = t.id "
                           "AND t.production_year >= 2000"));
  EXPECT_FALSE(first.from_cache);
  // Different aliases, flipped join operands, flipped >= to <=, reordered
  // conjuncts — same query, must hit.
  ASSERT_OK_AND_ASSIGN(core::AnswerResult second,
                       engine.AnswerSql(
                           "SELECT x.name, y.role FROM title x, cast_info y "
                           "WHERE 2000 <= x.production_year "
                           "AND x.id = y.movie_id"));
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(Keys(second.result), Keys(first.result));
  EXPECT_EQ(engine.cache().stats().entries, 1u);
}

TEST_F(ServeEngineTest, BetweenAndPairedInequalitiesShareOneEntry) {
  ServeEngine engine(model_.get(), SmallServe());
  ASSERT_OK_AND_ASSIGN(core::AnswerResult first,
                       engine.AnswerSql(
                           "SELECT t.name FROM title t "
                           "WHERE t.production_year BETWEEN 1990 AND 2005"));
  EXPECT_FALSE(first.from_cache);
  // The canonicalizer expands BETWEEN into its conjunct parts, so the
  // paired-inequality spelling lands on the same fingerprint — and the
  // differential suite proves the two spellings execute to identical
  // bytes, so handing one the other's cached answer is sound.
  ASSERT_OK_AND_ASSIGN(core::AnswerResult second,
                       engine.AnswerSql(
                           "SELECT t.name FROM title t "
                           "WHERE t.production_year >= 1990 "
                           "AND t.production_year <= 2005"));
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(Keys(second.result), Keys(first.result));
  EXPECT_EQ(engine.cache().stats().entries, 1u);
}

TEST_F(ServeEngineTest, ZeroCacheBytesAlwaysExecutes) {
  ServeOptions options = SmallServe();
  options.cache_bytes = 0;
  ServeEngine engine(model_.get(), options);
  ASSERT_OK_AND_ASSIGN(core::AnswerResult a, engine.AnswerSql(kQuery));
  ASSERT_OK_AND_ASSIGN(core::AnswerResult b, engine.AnswerSql(kQuery));
  EXPECT_FALSE(a.from_cache);
  EXPECT_FALSE(b.from_cache);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_EQ(Keys(a.result), Keys(b.result));
}

TEST_F(ServeEngineTest, AnswersAreIdenticalAcrossPoolSizes) {
  // The acceptance bar: cached answers byte-identical to uncached ones at
  // every thread count. Serve the same query through pools of 1, 2, and 4
  // workers (cold + warm each) and through the bare model; every result
  // must match row-for-row.
  ASSERT_OK_AND_ASSIGN(core::AnswerResult direct,
                       model_->AnswerSql(kQuery));
  const std::vector<std::string> want = Keys(direct.result);
  for (size_t pool_threads : {1u, 2u, 4u}) {
    ServeOptions options = SmallServe();
    options.pool_threads = pool_threads;
    ServeEngine engine(model_.get(), options);
    ASSERT_OK_AND_ASSIGN(core::AnswerResult cold, engine.AnswerSql(kQuery));
    ASSERT_OK_AND_ASSIGN(core::AnswerResult warm, engine.AnswerSql(kQuery));
    EXPECT_FALSE(cold.from_cache);
    EXPECT_TRUE(warm.from_cache);
    EXPECT_EQ(Keys(cold.result), want) << "pool_threads=" << pool_threads;
    EXPECT_EQ(Keys(warm.result), want) << "pool_threads=" << pool_threads;
    EXPECT_EQ(cold.result.column_names(), direct.result.column_names());
  }
}

TEST_F(ServeEngineTest, FineTuneInvalidatesCachedAnswers) {
  ServeEngine engine(model_.get(), SmallServe());
  ASSERT_OK_AND_ASSIGN(core::AnswerResult cold, engine.AnswerSql(kQuery));
  ASSERT_OK_AND_ASSIGN(core::AnswerResult warm, engine.AnswerSql(kQuery));
  ASSERT_TRUE(warm.from_cache);
  ASSERT_GE(engine.cache().stats().entries, 1u);

  const uint64_t generation_before = model_->generation();
  ASSERT_OK_AND_ASSIGN(
      metric::Workload drift,
      metric::Workload::FromSql(
          {"SELECT p.name FROM person p WHERE p.birth_year > 1980",
           "SELECT p.name, p.birth_year FROM person p "
           "WHERE p.birth_year < 1950"}));
  ASSERT_OK(engine.FineTune(drift));
  EXPECT_GT(model_->generation(), generation_before);
  // The eager sweep emptied the cache...
  EXPECT_EQ(engine.cache().stats().entries, 0u);
  // ...so the next Answer re-executes against the new approximation set.
  ASSERT_OK_AND_ASSIGN(core::AnswerResult fresh, engine.AnswerSql(kQuery));
  EXPECT_FALSE(fresh.from_cache);
  ASSERT_OK_AND_ASSIGN(core::AnswerResult rewarmed, engine.AnswerSql(kQuery));
  EXPECT_TRUE(rewarmed.from_cache);
  (void)cold;
}

TEST_F(ServeEngineTest, DegradedAnswersAreNotCached) {
  ServeEngine engine(model_.get(), SmallServe());
  // An impossible deadline forces the approximation attempt to degrade to
  // the full-database fallback path; those answers must not be cached.
  util::ExecContext context;
  context.set_deadline(util::Deadline::AfterSeconds(0.0));
  auto result = engine.AnswerSql(kQuery, context);
  if (result.ok() && result.value().fell_back) {
    EXPECT_EQ(engine.cache().stats().entries, 0u);
  }
  // Either way the expired context must not have poisoned the cache with
  // a partial answer: a follow-up unlimited query is a cold execution.
  ASSERT_OK_AND_ASSIGN(core::AnswerResult after, engine.AnswerSql(kQuery));
  EXPECT_FALSE(after.from_cache);
}

TEST_F(ServeEngineTest, DeadOnArrivalRequestsNeverTakeAnAdmissionSlot) {
  ServeEngine engine(model_.get(), SmallServe());
  // Already-expired deadline: turned away with a typed error before
  // binding, caching, or admission are even consulted.
  util::ExecContext expired;
  expired.set_deadline(util::Deadline::AfterSeconds(0.0));
  util::Result<core::AnswerResult> late = engine.AnswerSql(kQuery, expired);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), util::StatusCode::kDeadlineExceeded);

  // Already-cancelled: same fast path, typed kCancelled.
  util::ExecContext cancelled;
  cancelled.RequestCancel();
  util::Result<core::AnswerResult> gone =
      engine.AnswerSql(kQuery, cancelled);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), util::StatusCode::kCancelled);

  ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.expired_fast_path, 2u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.served, 0u);
  EXPECT_EQ(engine.cache().stats().entries, 0u);

  // The engine is unharmed: a live request still executes normally.
  ASSERT_OK_AND_ASSIGN(core::AnswerResult healthy, engine.AnswerSql(kQuery));
  EXPECT_FALSE(healthy.from_cache);
  EXPECT_EQ(engine.stats().admitted, 1u);
}

TEST_F(ServeEngineTest, FromConfigDerivesKnobs) {
  core::AsqpConfig config;
  config.serve_max_inflight = 3;
  config.serve_queue_capacity = 5;
  config.serve_pool_threads = 0;
  config.exec_threads = 4;
  config.cache_bytes = 1 << 20;
  ServeOptions options = ServeOptions::FromConfig(config);
  EXPECT_EQ(options.max_inflight, 3u);
  EXPECT_EQ(options.queue_capacity, 5u);
  EXPECT_EQ(options.pool_threads, 3u);  // exec_threads - 1
  EXPECT_EQ(options.cache_bytes, size_t{1} << 20);
  config.serve_pool_threads = 7;
  EXPECT_EQ(ServeOptions::FromConfig(config).pool_threads, 7u);
  EXPECT_TRUE(options.shed_to_learned);  // default on
  config.serve_shed_to_learned = false;
  EXPECT_FALSE(ServeOptions::FromConfig(config).shed_to_learned);
  // Batching/async knobs: off by default, carried through when set.
  EXPECT_EQ(options.batch_window_ms, 0.0);
  EXPECT_EQ(options.batch_max_queries, 8u);
  EXPECT_FALSE(options.async);
  config.serve_batch_window_ms = 2.5;
  config.serve_batch_max_queries = 3;
  config.serve_async = true;
  ServeOptions batched = ServeOptions::FromConfig(config);
  EXPECT_EQ(batched.batch_window_ms, 2.5);
  EXPECT_EQ(batched.batch_max_queries, 3u);
  EXPECT_TRUE(batched.async);
}

// ---- Batched / async serving ------------------------------------------

// Queries over one table with distinct predicates: the batch shares a
// single scan pass while each member keeps its own filter results.
const char kTitleRecent[] =
    "SELECT t.name FROM title t WHERE t.production_year >= 2000";
const char kTitleOld[] =
    "SELECT t.name FROM title t WHERE t.production_year < 1960";
const char kPersonQuery[] =
    "SELECT p.name FROM person p WHERE p.birth_year > 1970";

TEST_F(ServeEngineTest, BatchedAnswersAreByteIdenticalToUnbatched) {
  const std::vector<std::string> sqls = {kQuery, kTitleRecent, kTitleOld,
                                         kPersonQuery};
  // Unbatched reference answers first (one engine at a time: each engine
  // re-routes the model's execution pool through itself).
  std::vector<std::vector<std::string>> want;
  std::vector<std::vector<std::string>> want_columns;
  {
    ServeEngine plain(model_.get(), SmallServe());
    for (const std::string& sql : sqls) {
      ASSERT_OK_AND_ASSIGN(core::AnswerResult r, plain.AnswerSql(sql));
      want.push_back(Keys(r.result));
      want_columns.push_back(r.result.column_names());
    }
  }
  ServeOptions options = SmallServe();
  options.batch_window_ms = 5.0;
  options.batch_max_queries = 4;
  ServeEngine batched(model_.get(), options);
  std::vector<AnswerFuture> futures;
  futures.reserve(sqls.size());
  for (const std::string& sql : sqls) {
    futures.push_back(batched.AnswerSqlAsync(sql));
  }
  for (size_t i = 0; i < sqls.size(); ++i) {
    util::Result<core::AnswerResult> got = futures[i].Get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(Keys(got.value().result), want[i]) << sqls[i];
    EXPECT_EQ(got.value().result.column_names(), want_columns[i]);
  }
  ServeEngine::Stats stats = batched.stats();
  EXPECT_EQ(stats.served, sqls.size());
  EXPECT_GE(stats.batches_formed, 1u);
  EXPECT_EQ(stats.batch_members, sqls.size());
}

TEST_F(ServeEngineTest, SameTablePredicatesShareOneBatchAndOneScan) {
  ServeOptions options = SmallServe();
  // max_batch = 2 closes the group the instant the second same-table
  // query arrives — the test never depends on window timing.
  options.batch_window_ms = 200.0;
  options.batch_max_queries = 2;
  ServeEngine engine(model_.get(), options);
  AnswerFuture a = engine.AnswerSqlAsync(kTitleRecent);
  AnswerFuture b = engine.AnswerSqlAsync(kTitleOld);
  util::Result<core::AnswerResult> ra = a.Get();
  util::Result<core::AnswerResult> rb = b.Get();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.batches_formed, 1u);
  EXPECT_EQ(stats.batch_members, 2u);
  // Two members over one table: the shared pass saved one scan.
  EXPECT_GE(stats.shared_scan_saved, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(ServeEngineTest, EquivalentSpellingsDeduplicateWithinABatch) {
  ServeOptions options = SmallServe();
  options.batch_window_ms = 200.0;
  options.batch_max_queries = 2;
  ServeEngine engine(model_.get(), options);
  // Same query in two spellings (flipped inequality): one execution
  // serves both members.
  AnswerFuture a = engine.AnswerSqlAsync(
      "SELECT t.name FROM title t WHERE t.production_year >= 2000");
  AnswerFuture b = engine.AnswerSqlAsync(
      "SELECT t.name FROM title t WHERE 2000 <= t.production_year");
  util::Result<core::AnswerResult> ra = a.Get();
  util::Result<core::AnswerResult> rb = b.Get();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(Keys(ra.value().result), Keys(rb.value().result));
  ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.batch_members, 2u);
  EXPECT_EQ(stats.admitted, 1u);  // one representative executed
  EXPECT_GE(stats.shared_scan_saved, 1u);
  EXPECT_EQ(engine.cache().stats().entries, 1u);
}

TEST_F(ServeEngineTest, DisjointTableQueriesNeverShareABatch) {
  ServeOptions options = SmallServe();
  // Window far longer than the test: if disjoint-table queries gathered
  // into one group, the title pair below could not close its batch at
  // max_batch=2 and the waits would stall for the full window.
  options.batch_window_ms = 10000.0;
  options.batch_max_queries = 2;
  ServeEngine engine(model_.get(), options);
  AnswerFuture t1 = engine.AnswerSqlAsync(kTitleRecent);
  AnswerFuture p1 = engine.AnswerSqlAsync(kPersonQuery);
  AnswerFuture t2 = engine.AnswerSqlAsync(kTitleOld);
  AnswerFuture p2 = engine.AnswerSqlAsync(
      "SELECT p.name FROM person p WHERE p.birth_year < 1940");
  for (AnswerFuture* f : {&t1, &p1, &t2, &p2}) {
    util::Result<core::AnswerResult> r = f->Get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ServeEngine::Stats stats = engine.stats();
  // Two groups (title, person), each closed by its own second member.
  EXPECT_EQ(stats.batches_formed, 2u);
  EXPECT_EQ(stats.batch_members, 4u);
}

TEST_F(ServeEngineTest, CompletionQueueMultiplexesManySessions) {
  ServeOptions options = SmallServe();
  options.async = true;  // zero window: immediate per-query batches
  ServeEngine engine(model_.get(), options);
  const std::vector<std::string> sqls = {kTitleRecent, kTitleOld,
                                         kPersonQuery, kQuery};
  CompletionQueue queue;
  for (size_t i = 0; i < sqls.size(); ++i) {
    queue.Track(engine.AnswerSqlAsync(sqls[i]), i);
  }
  std::vector<bool> seen(sqls.size(), false);
  size_t delivered = 0;
  while (auto done = queue.Next()) {
    ASSERT_LT(done->tag, seen.size());
    EXPECT_FALSE(seen[done->tag]) << "duplicate delivery";
    seen[done->tag] = true;
    ASSERT_TRUE(done->result.ok()) << done->result.status().ToString();
    ++delivered;
  }
  EXPECT_EQ(delivered, sqls.size());
  EXPECT_EQ(queue.pending(), 0u);
}

TEST_F(ServeEngineTest, SyncAnswerRidesTheBatchedPathWhenSchedulerIsOn) {
  std::vector<std::string> want;
  {
    ServeEngine plain(model_.get(), SmallServe());
    ASSERT_OK_AND_ASSIGN(core::AnswerResult r, plain.AnswerSql(kTitleRecent));
    want = Keys(r.result);
  }
  ServeOptions options = SmallServe();
  options.async = true;
  ServeEngine engine(model_.get(), options);
  ASSERT_OK_AND_ASSIGN(core::AnswerResult got, engine.AnswerSql(kTitleRecent));
  EXPECT_EQ(Keys(got.result), want);
  ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.batch_members, 1u);  // the sync call became a ticket
  // And the batched execution filled the answer cache as usual.
  ASSERT_OK_AND_ASSIGN(core::AnswerResult warm, engine.AnswerSql(kTitleRecent));
  EXPECT_TRUE(warm.from_cache);
}

TEST_F(ServeEngineTest, AsyncFastPathRejectsDeadRequestsWithoutATicket) {
  ServeOptions options = SmallServe();
  options.async = true;
  ServeEngine engine(model_.get(), options);
  util::ExecContext expired;
  expired.set_deadline(util::Deadline::AfterSeconds(0.0));
  AnswerFuture late = engine.AnswerSqlAsync(kTitleRecent, expired);
  ASSERT_TRUE(late.Ready());  // resolved before return, no ticket queued
  util::Result<core::AnswerResult> r = late.Get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDeadlineExceeded);
  ServeEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.expired_fast_path, 1u);
  EXPECT_EQ(stats.batch_members, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace asqp
