#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/testing.h"
#include "util/random.h"

namespace asqp {
namespace sql {
namespace {

TEST(LexerTest, KeywordsIdentifiersNumbersStrings) {
  ASSERT_OK_AND_ASSIGN(auto tokens,
                       Tokenize("SELECT Foo, 12, 3.5, 'it''s' FROM bar"));
  ASSERT_EQ(tokens.size(), 11u);  // incl. end token
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "foo");  // identifiers lower-cased
  EXPECT_EQ(tokens[3].type, TokenType::kInteger);
  EXPECT_EQ(tokens[3].int_value, 12);
  EXPECT_EQ(tokens[5].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[5].float_value, 3.5);
  EXPECT_EQ(tokens[7].type, TokenType::kString);
  EXPECT_EQ(tokens[7].text, "it's");
}

TEST(LexerTest, TwoCharOperators) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("a <= b >= c <> d != e"));
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[3].text, ">=");
  EXPECT_EQ(tokens[5].text, "<>");
  EXPECT_EQ(tokens[7].text, "<>");  // != normalized
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

TEST(ParserTest, MinimalSelect) {
  ASSERT_OK_AND_ASSIGN(auto stmt, Parse("SELECT * FROM movies"));
  EXPECT_EQ(stmt.items.size(), 1u);
  EXPECT_TRUE(stmt.items[0].star);
  ASSERT_EQ(stmt.from.size(), 1u);
  EXPECT_EQ(stmt.from[0].table, "movies");
  EXPECT_EQ(stmt.limit, -1);
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(ParserTest, FullClauseSet) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      Parse("SELECT DISTINCT m.title, r.actor FROM movies m, roles r "
            "WHERE m.id = r.movie_id AND m.year >= 2010 "
            "ORDER BY m.title DESC LIMIT 5"));
  EXPECT_TRUE(stmt.distinct);
  EXPECT_EQ(stmt.items.size(), 2u);
  EXPECT_EQ(stmt.from.size(), 2u);
  EXPECT_EQ(stmt.from[0].alias, "m");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.order_by.size(), 1u);
  EXPECT_TRUE(stmt.order_by[0].desc);
  EXPECT_EQ(stmt.limit, 5);
}

TEST(ParserTest, JoinOnNormalizedToWhere) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      Parse("SELECT * FROM movies m JOIN roles r ON m.id = r.movie_id "
            "WHERE r.salary > 10"));
  EXPECT_EQ(stmt.from.size(), 2u);
  ASSERT_NE(stmt.where, nullptr);
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(stmt.where, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 2u);
}

TEST(ParserTest, InBetweenLikeIsNull) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      Parse("SELECT title FROM movies WHERE year IN (1999, 2004) "
            "AND rating BETWEEN 5.0 AND 9.0 AND title LIKE 'a%' "
            "AND title IS NOT NULL AND year NOT IN (2020)"));
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(stmt.where, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 5u);
  EXPECT_EQ(conjuncts[0]->kind, ExprKind::kIn);
  EXPECT_EQ(conjuncts[1]->kind, ExprKind::kBetween);
  EXPECT_EQ(conjuncts[2]->kind, ExprKind::kLike);
  EXPECT_EQ(conjuncts[3]->kind, ExprKind::kIsNull);
  EXPECT_TRUE(conjuncts[3]->negated);
  EXPECT_TRUE(conjuncts[4]->negated);
}

TEST(ParserTest, Aggregates) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      Parse("SELECT year, COUNT(*), AVG(rating) AS avg_r FROM movies "
            "GROUP BY year"));
  EXPECT_TRUE(stmt.HasAggregates());
  EXPECT_EQ(stmt.items[1].agg, AggFunc::kCount);
  EXPECT_TRUE(stmt.items[1].star);
  EXPECT_EQ(stmt.items[2].agg, AggFunc::kAvg);
  EXPECT_EQ(stmt.items[2].alias, "avg_r");
  EXPECT_EQ(stmt.group_by.size(), 1u);
}

TEST(ParserTest, CountDistinct) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       Parse("SELECT COUNT(DISTINCT actor) FROM roles"));
  EXPECT_EQ(stmt.items[0].agg, AggFunc::kCount);
  EXPECT_TRUE(stmt.items[0].distinct);
  EXPECT_FALSE(stmt.items[0].star);
  // Round trip.
  ASSERT_OK_AND_ASSIGN(auto stmt2, Parse(stmt.ToSql()));
  EXPECT_EQ(stmt2.ToSql(), stmt.ToSql());
  // DISTINCT * is invalid.
  EXPECT_FALSE(Parse("SELECT COUNT(DISTINCT *) FROM roles").ok());
}

TEST(ParserTest, NeverCrashesOnFuzzedInput) {
  // Robustness: mutated/truncated queries must return ParseError, never
  // crash or hang.
  util::Rng rng(77);
  const std::string seeds[] = {
      "SELECT a, COUNT(*) FROM t WHERE x IN (1,2) AND y BETWEEN 2 AND 3 "
      "GROUP BY a HAVING count > 1 ORDER BY a DESC LIMIT 5",
      "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z LIKE 'p%'",
  };
  const std::string charset = "()',.<>=*- ";
  for (const std::string& seed_sql : seeds) {
    for (int trial = 0; trial < 300; ++trial) {
      std::string mutated = seed_sql;
      const size_t edits = 1 + rng.NextBounded(4);
      for (size_t e = 0; e < edits; ++e) {
        const size_t pos = rng.NextBounded(mutated.size());
        switch (rng.NextBounded(3)) {
          case 0:  // replace
            mutated[pos] = charset[rng.NextBounded(charset.size())];
            break;
          case 1:  // delete
            mutated.erase(pos, 1 + rng.NextBounded(3));
            break;
          default:  // truncate
            mutated.resize(pos);
            break;
        }
        if (mutated.empty()) break;
      }
      auto result = Parse(mutated);  // outcome irrelevant; must not crash
      (void)result;
    }
  }
}

TEST(ParserTest, HavingClause) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      Parse("SELECT year, COUNT(*) AS c FROM movies GROUP BY year "
            "HAVING c > 1 ORDER BY c DESC"));
  ASSERT_NE(stmt.having, nullptr);
  EXPECT_EQ(stmt.having->op, BinOp::kGt);
  // Round trip.
  ASSERT_OK_AND_ASSIGN(auto stmt2, Parse(stmt.ToSql()));
  EXPECT_EQ(stmt2.ToSql(), stmt.ToSql());
}

TEST(ParserTest, HavingWithoutAggregatesRejected) {
  EXPECT_FALSE(Parse("SELECT a FROM t HAVING a > 1").ok());
}

TEST(ParserTest, OrPrecedenceBelowAnd) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3"));
  // Must parse as a=1 OR (b=2 AND c=3).
  ASSERT_EQ(stmt.where->op, BinOp::kOr);
  EXPECT_EQ(stmt.where->right->op, BinOp::kAnd);
}

TEST(ParserTest, NegativeNumbersAndArithmetic) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       Parse("SELECT * FROM t WHERE x > -5 AND y + 2 < 10"));
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(stmt.where, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[0]->right->literal.AsInt64(), -5);
  EXPECT_EQ(conjuncts[1]->left->op, BinOp::kAdd);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT * WHERE x = 1").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t LIMIT x").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t trailing garbage tokens =").ok());
}

TEST(ParserTest, ToSqlRoundTrips) {
  const char* kQueries[] = {
      "SELECT * FROM movies",
      "SELECT m.title FROM movies m WHERE m.year >= 2010 LIMIT 3",
      "SELECT title FROM movies WHERE year IN (1999, 2004) AND rating "
      "BETWEEN 5 AND 9",
      "SELECT year, COUNT(*) FROM movies GROUP BY year",
      "SELECT m.title, r.actor FROM movies m, roles r WHERE m.id = "
      "r.movie_id AND (m.year = 1999 OR m.year = 2010)",
  };
  for (const char* q : kQueries) {
    ASSERT_OK_AND_ASSIGN(auto stmt, Parse(q));
    const std::string sql1 = stmt.ToSql();
    ASSERT_OK_AND_ASSIGN(auto stmt2, Parse(sql1));
    EXPECT_EQ(stmt2.ToSql(), sql1) << "for query: " << q;
  }
}

TEST(AstTest, CloneIsDeep) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       Parse("SELECT a FROM t WHERE a > 1 AND b = 'x'"));
  SelectStatement copy = stmt.Clone();
  // Mutating the copy must not affect the original.
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(copy.where, &conjuncts);
  conjuncts[0]->right->literal = storage::Value(int64_t{99});
  std::vector<ExprPtr> orig;
  CollectConjuncts(stmt.where, &orig);
  EXPECT_EQ(orig[0]->right->literal.AsInt64(), 1);
}

TEST(AstTest, AndAllOfEmptyIsNull) {
  EXPECT_EQ(AndAll({}), nullptr);
}

TEST(BinderTest, ResolvesQualifiedAndUnqualified) {
  auto db = testing::MakeTinyMovieDb();
  ASSERT_OK_AND_ASSIGN(
      auto bound,
      ParseAndBind("SELECT title, r.salary FROM movies m, roles r "
                   "WHERE m.id = r.movie_id AND rating > 7",
                   *db));
  EXPECT_EQ(bound.num_tables(), 2u);
  // `title` and `rating` resolve to movies (table 0); salary to roles.
  EXPECT_EQ(bound.stmt.items[0].expr->table_idx, 0);
  EXPECT_EQ(bound.stmt.items[1].expr->table_idx, 1);
  ASSERT_EQ(bound.joins.size(), 1u);
  EXPECT_EQ(bound.filters[0].size(), 1u);  // rating > 7 pushed to movies
  EXPECT_TRUE(bound.filters[1].empty());
  EXPECT_TRUE(bound.residual.empty());
}

TEST(BinderTest, AmbiguousColumnIsError) {
  storage::Database db;
  auto t1 = std::make_shared<storage::Table>(
      "t1", storage::Schema({{"x", storage::ValueType::kInt64}}));
  auto t2 = std::make_shared<storage::Table>(
      "t2", storage::Schema({{"x", storage::ValueType::kInt64}}));
  ASSERT_OK(db.AddTable(t1));
  ASSERT_OK(db.AddTable(t2));
  const auto result = ParseAndBind("SELECT x FROM t1, t2", db);
  EXPECT_FALSE(result.ok());
}

TEST(BinderTest, UnknownColumnAndTableErrors) {
  auto db = testing::MakeTinyMovieDb();
  EXPECT_FALSE(ParseAndBind("SELECT nope FROM movies", *db).ok());
  EXPECT_FALSE(ParseAndBind("SELECT * FROM nope", *db).ok());
}

TEST(BinderTest, ResidualPredicateClassification) {
  auto db = testing::MakeTinyMovieDb();
  // Cross-table non-equi predicate lands in residual.
  ASSERT_OK_AND_ASSIGN(
      auto bound,
      ParseAndBind("SELECT * FROM movies m, roles r "
                   "WHERE m.id = r.movie_id AND m.rating > r.salary",
                   *db));
  EXPECT_EQ(bound.joins.size(), 1u);
  ASSERT_EQ(bound.residual.size(), 1u);
  EXPECT_EQ(bound.residual_tables[0].size(), 2u);
}

TEST(BinderTest, OrAcrossTablesIsResidual) {
  auto db = testing::MakeTinyMovieDb();
  ASSERT_OK_AND_ASSIGN(
      auto bound,
      ParseAndBind("SELECT * FROM movies m, roles r WHERE m.id = r.movie_id "
                   "AND (m.year = 1999 OR r.salary > 20)",
                   *db));
  EXPECT_EQ(bound.residual.size(), 1u);
}

}  // namespace
}  // namespace sql
}  // namespace asqp
