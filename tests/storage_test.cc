#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/database.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"
#include "tests/testing.h"

namespace asqp {
namespace storage {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{7}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{7}).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(std::string("x")).AsString(), "x");
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(int64_t{3})), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_GT(Value(int64_t{0}).Compare(Value()), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value(std::string("a")).Compare(Value(std::string("b"))), 0);
  EXPECT_EQ(Value(std::string("ab")).Compare(Value(std::string("ab"))), 0);
  // Numerics order before strings in the total order.
  EXPECT_LT(Value(int64_t{99}).Compare(Value(std::string("1"))), 0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{-4}).ToString(), "-4");
  EXPECT_EQ(Value(std::string("hi")).ToString(), "hi");
}

TEST(ColumnTest, Int64AppendAndRead) {
  Column c(ValueType::kInt64);
  c.AppendInt64(5);
  c.AppendNull();
  c.AppendInt64(-3);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.Int64At(2), -3);
  EXPECT_TRUE(c.ValueAt(1).is_null());
  EXPECT_EQ(c.ValueAt(0).AsInt64(), 5);
}

TEST(ColumnTest, StringDictionaryEncoding) {
  Column c(ValueType::kString);
  c.AppendString("red");
  c.AppendString("blue");
  c.AppendString("red");
  c.AppendString("red");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.dict_size(), 2u);  // only two distinct strings stored
  EXPECT_EQ(c.StringAt(0), "red");
  EXPECT_EQ(c.StringAt(1), "blue");
  EXPECT_EQ(c.StringCodeAt(0), c.StringCodeAt(2));
}

TEST(ColumnTest, AppendValueTypeChecks) {
  Column c(ValueType::kInt64);
  EXPECT_OK(c.AppendValue(Value(int64_t{1})));
  EXPECT_OK(c.AppendValue(Value()));  // NULL is always allowed
  Column s(ValueType::kString);
  const util::Status st = s.AppendValue(Value(int64_t{1}));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
}

TEST(ColumnTest, NumericAtCoercesAndDefaults) {
  Column c(ValueType::kDouble);
  c.AppendDouble(1.5);
  c.AppendNull();
  EXPECT_DOUBLE_EQ(c.NumericAt(0), 1.5);
  EXPECT_DOUBLE_EQ(c.NumericAt(1), 0.0);
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(s.num_fields(), 2u);
  ASSERT_TRUE(s.FieldIndex("b").has_value());
  EXPECT_EQ(*s.FieldIndex("b"), 1u);
  EXPECT_FALSE(s.FieldIndex("missing").has_value());
}

TEST(TableTest, AppendRowAndReadBack) {
  Table t("t", Schema({{"x", ValueType::kInt64}, {"s", ValueType::kString}}));
  ASSERT_OK(t.AppendRow({Value(int64_t{1}), Value(std::string("one"))}));
  ASSERT_OK(t.AppendRow({Value(), Value(std::string("two"))}));
  EXPECT_EQ(t.num_rows(), 2u);
  auto row = t.GetRow(1);
  EXPECT_TRUE(row[0].is_null());
  EXPECT_EQ(row[1].AsString(), "two");
}

TEST(TableTest, AppendRowArityMismatch) {
  Table t("t", Schema({{"x", ValueType::kInt64}}));
  EXPECT_FALSE(t.AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
}

TEST(DatabaseTest, AddAndGetTables) {
  auto db = testing::MakeTinyMovieDb();
  EXPECT_TRUE(db->HasTable("movies"));
  EXPECT_TRUE(db->HasTable("roles"));
  EXPECT_FALSE(db->HasTable("nope"));
  ASSERT_OK_AND_ASSIGN(auto movies, db->GetTable("movies"));
  EXPECT_EQ(movies->num_rows(), 8u);
  EXPECT_EQ(db->TotalRows(), 18u);
  EXPECT_FALSE(db->GetTable("nope").ok());
}

TEST(DatabaseTest, DuplicateTableRejected) {
  Database db;
  auto t = std::make_shared<Table>("t", Schema({{"x", ValueType::kInt64}}));
  ASSERT_OK(db.AddTable(t));
  const util::Status st = db.AddTable(t);
  EXPECT_EQ(st.code(), util::StatusCode::kAlreadyExists);
}

TEST(ApproximationSetTest, AddSealDedupe) {
  ApproximationSet s;
  s.Add("movies", 3);
  s.Add("movies", 1);
  s.Add("movies", 3);
  s.Add("roles", 0);
  s.Seal();
  EXPECT_EQ(s.TotalTuples(), 3u);
  EXPECT_TRUE(s.Contains("movies", 1));
  EXPECT_TRUE(s.Contains("movies", 3));
  EXPECT_FALSE(s.Contains("movies", 2));
  EXPECT_TRUE(s.Contains("roles", 0));
  EXPECT_FALSE(s.Contains("other", 0));
  EXPECT_EQ(s.RowsFor("movies").size(), 2u);
  EXPECT_TRUE(s.RowsFor("absent").empty());
}

TEST(DatabaseViewTest, FullViewSeesAllRows) {
  auto db = testing::MakeTinyMovieDb();
  DatabaseView view(db.get());
  ASSERT_OK_AND_ASSIGN(auto movies, db->GetTable("movies"));
  EXPECT_EQ(view.VisibleRows(*movies), 8u);
  EXPECT_EQ(view.PhysicalRow(*movies, 5), 5u);
  EXPECT_FALSE(view.restricted());
}

TEST(DatabaseViewTest, SubsetViewRestrictsRows) {
  auto db = testing::MakeTinyMovieDb();
  ApproximationSet s;
  s.Add("movies", 2);
  s.Add("movies", 6);
  s.Seal();
  DatabaseView view(db.get(), &s);
  ASSERT_OK_AND_ASSIGN(auto movies, db->GetTable("movies"));
  ASSERT_OK_AND_ASSIGN(auto roles, db->GetTable("roles"));
  EXPECT_TRUE(view.restricted());
  EXPECT_EQ(view.VisibleRows(*movies), 2u);
  EXPECT_EQ(view.PhysicalRow(*movies, 0), 2u);
  EXPECT_EQ(view.PhysicalRow(*movies, 1), 6u);
  EXPECT_EQ(view.VisibleRows(*roles), 0u);  // roles absent from the subset
}

}  // namespace
}  // namespace storage
}  // namespace asqp
