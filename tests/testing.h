// Shared gtest helpers for Status/Result assertions and small fixtures.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "storage/database.h"
#include "util/status.h"

#define ASSERT_OK(expr)                                        \
  do {                                                         \
    const ::asqp::util::Status _st = (expr);                   \
    ASSERT_TRUE(_st.ok()) << "expected OK, got " << _st.ToString(); \
  } while (0)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    const ::asqp::util::Status _st = (expr);                   \
    EXPECT_TRUE(_st.ok()) << "expected OK, got " << _st.ToString(); \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                                    \
  ASSERT_OK_AND_ASSIGN_IMPL(ASQP_CONCAT(_assert_res_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)            \
  auto tmp = (expr);                                         \
  ASSERT_TRUE(tmp.ok()) << "expected OK, got "               \
                        << tmp.status().ToString();          \
  lhs = std::move(tmp).value()

namespace asqp {
namespace testing {

/// Build a tiny two-table database used across executor / metric tests:
///
///   movies(id INT64, title STRING, year INT64, rating DOUBLE)   -- 8 rows
///   roles(movie_id INT64, actor STRING, salary DOUBLE)          -- 10 rows
inline std::shared_ptr<storage::Database> MakeTinyMovieDb() {
  using storage::Field;
  using storage::Schema;
  using storage::Table;
  using storage::Value;
  using storage::ValueType;

  auto db = std::make_shared<storage::Database>();

  auto movies = std::make_shared<Table>(
      "movies", Schema({{"id", ValueType::kInt64},
                        {"title", ValueType::kString},
                        {"year", ValueType::kInt64},
                        {"rating", ValueType::kDouble}}));
  const struct {
    int64_t id;
    const char* title;
    int64_t year;
    double rating;
  } kMovies[] = {
      {1, "alpha", 1999, 7.5}, {2, "beta", 2004, 6.1},  {3, "gamma", 2010, 8.2},
      {4, "delta", 2010, 5.5}, {5, "epsilon", 2015, 9.0}, {6, "zeta", 2018, 4.4},
      {7, "eta", 2020, 7.7},   {8, "theta", 2021, 6.6},
  };
  for (const auto& m : kMovies) {
    EXPECT_TRUE(movies
                    ->AppendRow({Value(m.id), Value(std::string(m.title)),
                                 Value(m.year), Value(m.rating)})
                    .ok());
  }

  auto roles = std::make_shared<Table>(
      "roles", Schema({{"movie_id", ValueType::kInt64},
                       {"actor", ValueType::kString},
                       {"salary", ValueType::kDouble}}));
  const struct {
    int64_t movie_id;
    const char* actor;
    double salary;
  } kRoles[] = {
      {1, "ann", 10.0}, {1, "bob", 12.0}, {2, "ann", 9.0},  {3, "cat", 20.0},
      {3, "bob", 11.0}, {5, "dan", 30.0}, {5, "cat", 25.0}, {7, "ann", 14.0},
      {8, "eve", 8.0},  {8, "bob", 13.0},
  };
  for (const auto& r : kRoles) {
    EXPECT_TRUE(roles
                    ->AppendRow({Value(r.movie_id), Value(std::string(r.actor)),
                                 Value(r.salary)})
                    .ok());
  }

  EXPECT_TRUE(db->AddTable(movies).ok());
  EXPECT_TRUE(db->AddTable(roles).ok());
  return db;
}

}  // namespace testing
}  // namespace asqp
