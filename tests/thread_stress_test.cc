// Concurrency stress tests, designed to run under -DASQP_SANITIZE=thread:
// ThreadPool lifecycle and ParallelFor edge cases (zero items, fewer items
// than workers, exceptions on the calling thread vs. a worker), plus the
// trainer's parallel rollout accumulation. Iteration counts scale down
// under TSan (ASQP_SANITIZE_THREAD) to keep the suite fast despite the
// sanitizer's slowdown.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "rl/action_space.h"
#include "rl/env.h"
#include "rl/trainer.h"
#include "tests/testing.h"
#include "util/thread_pool.h"

namespace asqp {
namespace {

#ifdef ASQP_SANITIZE_THREAD
constexpr int kRounds = 20;
#else
constexpr int kRounds = 100;
#endif

TEST(ThreadStressTest, ParallelForZeroItemsReturnsImmediately) {
  util::ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "fn must not run for n == 0"; });
  // A zero-item ParallelFor must not consume a pending exception either:
  // it is a no-op, not a join point.
  pool.Submit([] { throw std::runtime_error("pending"); });
  pool.ParallelFor(0, [](size_t) {});
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
}

TEST(ThreadStressTest, ParallelForFewerItemsThanWorkers) {
  util::ThreadPool pool(8);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::atomic<int>> hits(3);
    pool.ParallelFor(3, [&hits](size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadStressTest, ParallelForSingleItemRunsOnCaller) {
  // n == 1 enqueues no helper tasks; the calling thread does the work.
  util::ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  // Single item: only this thread writes `seen`, no concurrent access.
  pool.ParallelFor(1, [&seen](size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadStressTest, CallerThreadExceptionPropagatesAndPoolSurvives) {
  util::ThreadPool pool(4);
  // With n == 1 the exception is raised on the calling thread.
  EXPECT_THROW(
      pool.ParallelFor(1, [](size_t) { throw std::runtime_error("caller"); }),
      std::runtime_error);
  // The pool must remain usable: no stuck in_flight count, no stale error.
  std::atomic<int> ran{0};
  pool.ParallelFor(16, [&ran](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadStressTest, WorkerExceptionPropagatesFirstWins) {
  util::ThreadPool pool(4);
  for (int round = 0; round < kRounds / 4; ++round) {
    std::atomic<int> ran{0};
    bool threw = false;
    try {
      pool.ParallelFor(64, [&ran](size_t i) {
        if (i % 8 == 0) throw std::runtime_error("item " + std::to_string(i));
        ran.fetch_add(1);
      });
    } catch (const std::runtime_error& e) {
      threw = true;
      EXPECT_EQ(std::string(e.what()).rfind("item ", 0), 0u);
    }
    EXPECT_TRUE(threw);
    // Exactly one exception escapes per ParallelFor; the pool is reusable.
    std::atomic<int> after{0};
    pool.ParallelFor(8, [&after](size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 8);
  }
}

TEST(ThreadStressTest, EveryIndexClaimedExactlyOnceUnderContention) {
  util::ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  constexpr size_t kItems = 512;
  for (int round = 0; round < kRounds / 4; ++round) {
    std::vector<std::atomic<int>> hits(kItems);
    pool.ParallelFor(kItems, [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kItems; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadStressTest, SubmitWaitIdleHammer) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < kRounds; ++round) {
    for (int t = 0; t < 32; ++t) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), kRounds * 32);
}

TEST(ThreadStressTest, PoolDestructionWithQueuedWorkJoinsCleanly) {
  std::atomic<int> done{0};
  for (int round = 0; round < kRounds / 10; ++round) {
    util::ThreadPool pool(3);
    for (int t = 0; t < 24; ++t) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(done.load(), (kRounds / 10) * 24);
}

// --- parallel rollout accumulation (the trainer's use of the pool) --------

/// Toy action space copied from rl_test.cc: actions 0-2 fully cover the
/// three queries, budget 6 fits exactly three actions.
rl::ActionSpace MakeToySpace(size_t num_actions = 12) {
  rl::ActionSpace space;
  space.table_names = {"t"};
  space.budget = 6;
  space.num_queries = 3;
  space.query_target = {2.0f, 2.0f, 2.0f};
  space.query_weight = {1.0f / 3, 1.0f / 3, 1.0f / 3};
  for (size_t a = 0; a < num_actions; ++a) {
    rl::PoolTuple p1{{{0, static_cast<uint32_t>(2 * a)}}};
    rl::PoolTuple p2{{{0, static_cast<uint32_t>(2 * a + 1)}}};
    space.pool.push_back(p1);
    space.pool.push_back(p2);
    space.action_tuples.push_back({static_cast<uint32_t>(2 * a),
                                   static_cast<uint32_t>(2 * a + 1)});
    space.action_cost.push_back(2);
  }
  space.contribution.assign(num_actions * 3, 0.0f);
  for (size_t a = 0; a < 3; ++a) space.contribution[a * 3 + a] = 2.0f;
  return space;
}

TEST(ThreadStressTest, ParallelRolloutAccumulationIsRaceFree) {
  // Many workers sharing one policy snapshot while each accumulates into
  // its own RolloutBuffer slot — the pattern TSan must find clean.
  rl::ActionSpace space = MakeToySpace(24);
  rl::TrainerConfig config;
  config.algorithm = rl::Algorithm::kPpo;
#ifdef ASQP_SANITIZE_THREAD
  config.iterations = 4;
#else
  config.iterations = 10;
#endif
  config.episodes_per_iteration = 16;
  config.num_workers = 8;
  config.hidden_dim = 16;
  config.seed = 11;
  rl::EnvFactory factory = [&space] {
    return std::make_unique<rl::GslEnv>(&space, 0);
  };
  ASSERT_OK_AND_ASSIGN(rl::TrainResult result, rl::Train(factory, config));
  EXPECT_EQ(result.iterations_run, config.iterations);
  EXPECT_EQ(result.episodes_run,
            config.iterations * config.episodes_per_iteration);
}

TEST(ThreadStressTest, ParallelTrainingRunsAreIndependent) {
  // Two concurrent Train() calls (distinct pools, distinct action spaces)
  // must not interfere — guards against hidden global mutable state.
  auto run = [](uint64_t seed, size_t* episodes) {
    rl::ActionSpace space = MakeToySpace(12);
    rl::TrainerConfig config;
    config.algorithm = rl::Algorithm::kA2c;
    config.iterations = 3;
    config.episodes_per_iteration = 8;
    config.num_workers = 4;
    config.hidden_dim = 16;
    config.seed = seed;
    rl::EnvFactory factory = [&space] {
      return std::make_unique<rl::GslEnv>(&space, 0);
    };
    util::Result<rl::TrainResult> result = rl::Train(factory, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    *episodes = result.value().episodes_run;
  };
  size_t episodes_a = 0;
  size_t episodes_b = 0;
  std::thread a([&] { run(21, &episodes_a); });
  std::thread b([&] { run(22, &episodes_b); });
  a.join();
  b.join();
  EXPECT_EQ(episodes_a, 24u);
  EXPECT_EQ(episodes_b, 24u);
}

}  // namespace
}  // namespace asqp
