#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tests/testing.h"
#include "util/exec_context.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace asqp {
namespace util {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing table foo");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing table foo");
  EXPECT_EQ(st.ToString(), "NotFound: missing table foo");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::InvalidArgument("bad k");
  Status copy = st;
  EXPECT_EQ(copy.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(copy.message(), "bad k");
  EXPECT_EQ(st.message(), "bad k");
}

TEST(StatusTest, ResilienceCodes) {
  const Status cancelled = Status::Cancelled("user hit ctrl-c");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: user hit ctrl-c");

  const Status exhausted = Status::ResourceExhausted("row budget");
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.ToString(), "ResourceExhausted: row budget");

  const Status late = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: too slow");
}

Status Innermost() { return Status::Cancelled("stop requested"); }
Status MiddleLayer() {
  ASQP_RETURN_NOT_OK(Innermost());
  return Status::OK();
}
Status OuterLayer() {
  ASQP_RETURN_NOT_OK(MiddleLayer());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagatesThroughNestedCalls) {
  const Status st = OuterLayer();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(st.message(), "stop requested");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  ASQP_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);

  Result<int> err = Half(3);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  ASSERT_OK(UseHalf(8, &out));
  EXPECT_EQ(out, 4);
  Status st = UseHalf(7, &out);
  EXPECT_FALSE(st.ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, SampleIndicesDistinctAndSorted) {
  Rng rng(3);
  auto sample = rng.SampleIndices(100, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
}

TEST(RngTest, SampleIndicesAllWhenCountExceedsN) {
  Rng rng(3);
  auto sample = rng.SampleIndices(5, 10);
  ASSERT_EQ(sample.size(), 5u);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(5);
  int low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 0.8) < 10) ++low;
  }
  // With theta=0.8 the first decile should receive far more than 10% mass.
  EXPECT_GT(low, n / 5);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(9);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(StringUtilTest, ToLowerAndTrim) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, SplitAndJoinRoundTrip) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, ","), "a,b,,c");
}

TEST(StringUtilTest, Fnv1aStableKnownValue) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a("a"), Fnv1a("b"));
  EXPECT_EQ(Fnv1a("select"), Fnv1a("select"));
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(Format("k=%d f=%.1f s=%s", 3, 2.5, "x"), "k=3 f=2.5 s=x");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RethrowsFirstTaskExceptionFromWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> finished{0};
  pool.Submit([] { throw std::runtime_error("worker blew up"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&finished] { finished.fetch_add(1); });
  }
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  EXPECT_EQ(finished.load(), 10);  // the crash did not kill other tasks

  // The pool stays usable: the exception was consumed by the rethrow.
  pool.Submit([&finished] { finished.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(finished.load(), 11);
}

TEST(ThreadPoolTest, ParallelForRethrowsWorkerException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(20,
                                [](size_t i) {
                                  if (i == 7) {
                                    throw std::runtime_error("bad index");
                                  }
                                }),
               std::runtime_error);
  // Later batches run normally.
  std::atomic<int> hits{0};
  pool.ParallelFor(5, [&hits](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 5);
}

TEST(ExecContextTest, UnlimitedByDefault) {
  ExecContext context;
  EXPECT_TRUE(context.IsUnlimited());
  EXPECT_OK(context.Check("work"));
  EXPECT_OK(context.CheckRows(1u << 30, "work"));
}

TEST(ExecContextTest, CancellationTripsCheck) {
  ExecContext context;
  context.EnableCancellation();
  EXPECT_FALSE(context.IsUnlimited());
  EXPECT_OK(context.Check("scan"));
  context.RequestCancel();
  const Status st = context.Check("scan");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, RowBudgetMapsToResourceExhausted) {
  ExecContext context;
  context.set_max_rows(100);
  EXPECT_OK(context.CheckRows(100, "join"));
  const Status st = context.CheckRows(101, "join");
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(DeadlineTickerTest, ExpiredDeadlineCaughtOnFirstTick) {
  const ExecContext context = ExecContext::WithDeadline(0.0);
  DeadlineTicker ticker(context, /*stride=*/1024);
  const Status st = ticker.Tick("table scan");
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  // Sticky: every later tick reports the same expiry.
  EXPECT_EQ(ticker.Tick("table scan").code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTickerTest, UnlimitedContextNeverTrips) {
  ExecContext context;
  DeadlineTicker ticker(context, /*stride=*/1);
  for (int i = 0; i < 10000; ++i) EXPECT_OK(ticker.Tick("loop"));
}

TEST(DeadlineTickerTest, BareDeadlineForm) {
  DeadlineTicker fresh(Deadline::AfterSeconds(60.0));
  EXPECT_FALSE(fresh.Expired());
  DeadlineTicker expired(Deadline::AfterSeconds(0.0));
  EXPECT_TRUE(expired.Expired());
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline d = Deadline::Unlimited();
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ShortDeadlineExpires) {
  Deadline d = Deadline::AfterSeconds(0.0);
  EXPECT_TRUE(d.Expired());
}


TEST(DeadlineTest, RemainingSecondsTracksExpiry) {
  EXPECT_TRUE(std::isinf(Deadline::Unlimited().RemainingSeconds()));
  EXPECT_GT(Deadline::AfterSeconds(60.0).RemainingSeconds(), 1.0);
  EXPECT_LE(Deadline::AfterSeconds(0.0).RemainingSeconds(), 0.0);
}

TEST(LatchTest, WaitReleasesAtZero) {
  Latch latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released.store(true);
  });
  latch.CountDown();
  latch.CountDown(2);
  waiter.join();
  EXPECT_TRUE(released.load());
  latch.Wait();  // already released: returns immediately
}

TEST(FifoSemaphoreTest, TryAcquireRespectsPermits) {
  FifoSemaphore sem(/*permits=*/2, /*max_waiters=*/4);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
  sem.Release();
  sem.Release();
  EXPECT_EQ(sem.available(), 2u);
}

TEST(FifoSemaphoreTest, AcquireTimesOutWithDeadline) {
  FifoSemaphore sem(/*permits=*/1, /*max_waiters=*/4);
  ASSERT_OK(sem.Acquire());
  Status st = sem.Acquire(ExecContext::WithDeadline(0.02));
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  // The timed-out waiter unlinked itself; a release hands the permit to
  // nobody and restores availability.
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
  sem.Release();
}

TEST(FifoSemaphoreTest, AcquireHonorsCancellation) {
  FifoSemaphore sem(/*permits=*/1, /*max_waiters=*/4);
  ASSERT_OK(sem.Acquire());
  ExecContext context;
  context.EnableCancellation();
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    context.RequestCancel();
  });
  Status st = sem.Acquire(context);
  canceller.join();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  sem.Release();
}

TEST(FifoSemaphoreTest, QueueOverflowRejectsImmediately) {
  FifoSemaphore sem(/*permits=*/1, /*max_waiters=*/0);
  ASSERT_OK(sem.Acquire());
  // No queue capacity: the second acquire is rejected, not queued.
  Status st = sem.Acquire(ExecContext::WithDeadline(10.0));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  sem.Release();
}

TEST(FifoSemaphoreTest, WaitersAreServedInFifoOrder) {
  FifoSemaphore sem(/*permits=*/1, /*max_waiters=*/8);
  ASSERT_OK(sem.Acquire());
  std::mutex order_mu;
  std::vector<int> order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      // Stagger arrivals so the queue order is deterministic.
      while (sem.waiting() != static_cast<size_t>(i)) {
        std::this_thread::yield();
      }
      ASSERT_OK(sem.Acquire());
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(i);
      }
      sem.Release();
    });
  }
  // Wait until all four are queued, then start the handoff chain.
  while (sem.waiting() < 4) std::this_thread::yield();
  sem.Release();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(FifoSemaphoreTest, LateArrivalDoesNotOvertakeQueuedWaiter) {
  FifoSemaphore sem(/*permits=*/1, /*max_waiters=*/4);
  ASSERT_OK(sem.Acquire());
  std::atomic<bool> queued_got_it{false};
  std::thread queued([&] {
    ASSERT_OK(sem.Acquire());
    queued_got_it.store(true);
    sem.Release();
  });
  while (sem.waiting() < 1) std::this_thread::yield();
  // A free permit with a non-empty queue must not be stolen.
  sem.Release();
  queued.join();
  EXPECT_TRUE(queued_got_it.load());
  EXPECT_FALSE(sem.waiting() > 0);
  ASSERT_OK(sem.Acquire());
  sem.Release();
}

}  // namespace
}  // namespace util
}  // namespace asqp
