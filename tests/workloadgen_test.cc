#include <gtest/gtest.h>

#include "data/dataset.h"
#include "exec/executor.h"
#include "sql/binder.h"
#include "tests/testing.h"
#include "workloadgen/generator.h"
#include "workloadgen/stats.h"

namespace asqp {
namespace workloadgen {
namespace {

TEST(StatsTest, NumericColumnStats) {
  auto db = testing::MakeTinyMovieDb();
  DatabaseStats stats = DatabaseStats::Collect(*db);
  const TableStats* movies = stats.FindTable("movies");
  ASSERT_NE(movies, nullptr);
  EXPECT_EQ(movies->row_count, 8u);
  const ColumnStats* year = movies->FindColumn("year");
  ASSERT_NE(year, nullptr);
  EXPECT_TRUE(year->is_numeric());
  EXPECT_DOUBLE_EQ(year->min, 1999.0);
  EXPECT_DOUBLE_EQ(year->max, 2021.0);
  EXPECT_NEAR(year->mean, 2012.125, 1e-9);
  EXPECT_GT(year->stddev, 0.0);
  EXPECT_EQ(year->null_count, 0u);
}

TEST(StatsTest, CategoricalTopValues) {
  auto db = testing::MakeTinyMovieDb();
  DatabaseStats stats = DatabaseStats::Collect(*db);
  const ColumnStats* actor = stats.FindTable("roles")->FindColumn("actor");
  ASSERT_NE(actor, nullptr);
  EXPECT_EQ(actor->distinct_count, 5u);
  ASSERT_FALSE(actor->top_values.empty());
  // ann and bob appear 3x each; frequency-descending with ties by code.
  EXPECT_EQ(actor->top_values[0].second, 3u);
  EXPECT_EQ(actor->ValueFrequency("eve"), 1u);
  EXPECT_EQ(actor->ValueFrequency("nobody"), 0u);
}

TEST(StatsTest, NullCounting) {
  storage::Database db;
  auto t = std::make_shared<storage::Table>(
      "t", storage::Schema({{"x", storage::ValueType::kInt64}}));
  ASSERT_OK(t->AppendRow({storage::Value(int64_t{1})}));
  ASSERT_OK(t->AppendRow({storage::Value()}));
  ASSERT_OK(t->AppendRow({storage::Value()}));
  ASSERT_OK(db.AddTable(t));
  DatabaseStats stats = DatabaseStats::Collect(db);
  EXPECT_EQ(stats.FindTable("t")->FindColumn("x")->null_count, 2u);
}

TEST(StatsTest, MaxTopValuesBound) {
  auto db = testing::MakeTinyMovieDb();
  DatabaseStats stats = DatabaseStats::Collect(*db, /*max_top_values=*/2);
  const ColumnStats* actor = stats.FindTable("roles")->FindColumn("actor");
  EXPECT_EQ(actor->top_values.size(), 2u);
  EXPECT_EQ(actor->distinct_count, 5u);  // distinct count still exact
}

class GeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeTinyMovieDb();
    stats_ = DatabaseStats::Collect(*db_);
    fks_ = {{"roles", "movie_id", "movies", "id"}};
    gen_ = std::make_unique<QueryGenerator>(db_.get(), &stats_, fks_);
  }

  std::shared_ptr<storage::Database> db_;
  DatabaseStats stats_;
  std::vector<FkEdge> fks_;
  std::unique_ptr<QueryGenerator> gen_;
};

TEST_F(GeneratorTest, GeneratedQueriesBindAndExecute) {
  QueryGenOptions opts;
  opts.max_joins = 1;
  metric::Workload w = gen_->GenerateWorkload(50, opts, 7);
  ASSERT_EQ(w.size(), 50u);
  exec::QueryEngine engine;
  storage::DatabaseView view(db_.get());
  size_t nonempty = 0;
  for (const auto& q : w.queries()) {
    auto bound = sql::Bind(q.stmt, *db_);
    ASSERT_TRUE(bound.ok()) << q.ToSql() << ": " << bound.status().ToString();
    auto rs = engine.Execute(bound.value(), view);
    ASSERT_TRUE(rs.ok()) << q.ToSql() << ": " << rs.status().ToString();
    if (rs.value().num_rows() > 0) ++nonempty;
  }
  // Statistics-driven predicates should make most queries non-empty.
  EXPECT_GT(nonempty, 25u);
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  QueryGenOptions opts;
  metric::Workload a = gen_->GenerateWorkload(10, opts, 3);
  metric::Workload b = gen_->GenerateWorkload(10, opts, 3);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.query(i).ToSql(), b.query(i).ToSql());
  }
}

TEST_F(GeneratorTest, AggregateFractionHonored) {
  QueryGenOptions opts;
  opts.agg_fraction = 1.0;
  metric::Workload w = gen_->GenerateWorkload(10, opts, 5);
  for (const auto& q : w.queries()) {
    EXPECT_TRUE(q.stmt.HasAggregates()) << q.ToSql();
  }
  opts.agg_fraction = 0.0;
  metric::Workload spj = gen_->GenerateWorkload(10, opts, 5);
  for (const auto& q : spj.queries()) {
    EXPECT_FALSE(q.stmt.HasAggregates()) << q.ToSql();
  }
}

TEST_F(GeneratorTest, JoinsUseFkEdges) {
  QueryGenOptions opts;
  opts.max_joins = 1;
  bool saw_join = false;
  metric::Workload w = gen_->GenerateWorkload(30, opts, 11);
  for (const auto& q : w.queries()) {
    if (q.stmt.from.size() == 2) saw_join = true;
  }
  EXPECT_TRUE(saw_join);
}

TEST_F(GeneratorTest, BandRestrictsNumericCenters) {
  // Narrow top band: generated numeric predicates should sit in the top
  // region of the column range.
  QueryGenOptions lo;
  lo.band_lo = 0.0;
  lo.band_hi = 0.1;
  lo.max_joins = 0;
  QueryGenOptions hi = lo;
  hi.band_lo = 0.9;
  hi.band_hi = 1.0;
  // The two themed workloads must differ.
  metric::Workload wl = gen_->GenerateWorkload(10, lo, 13);
  metric::Workload wh = gen_->GenerateWorkload(10, hi, 13);
  bool differ = false;
  for (size_t i = 0; i < wl.size(); ++i) {
    if (wl.query(i).ToSql() != wh.query(i).ToSql()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(DatasetTest, ImdbBundleShape) {
  data::DatasetOptions opts;
  opts.scale = 0.02;
  opts.workload_size = 10;
  data::DatasetBundle imdb = data::MakeImdbJob(opts);
  EXPECT_EQ(imdb.name, "imdb");
  EXPECT_TRUE(imdb.db->HasTable("title"));
  EXPECT_TRUE(imdb.db->HasTable("cast_info"));
  EXPECT_EQ(imdb.fks.size(), 4u);
  EXPECT_EQ(imdb.workload.size(), 10u);
  // All workload queries bind and run.
  exec::QueryEngine engine;
  storage::DatabaseView view(imdb.db.get());
  for (const auto& q : imdb.workload.queries()) {
    auto bound = sql::Bind(q.stmt, *imdb.db);
    ASSERT_TRUE(bound.ok()) << q.ToSql();
    ASSERT_TRUE(engine.Execute(bound.value(), view).ok()) << q.ToSql();
  }
}

TEST(DatasetTest, MasAndFlightsBundles) {
  data::DatasetOptions opts;
  opts.scale = 0.02;
  opts.workload_size = 5;
  data::DatasetBundle mas = data::MakeMas(opts);
  EXPECT_TRUE(mas.db->HasTable("publication"));
  EXPECT_EQ(mas.workload.size(), 5u);

  data::DatasetBundle flights = data::MakeFlights(opts);
  EXPECT_TRUE(flights.db->HasTable("flights"));
  auto fl = flights.db->GetTable("flights").value();
  EXPECT_GT(fl->num_rows(), 500u);
}

TEST(DatasetTest, DeterministicGeneration) {
  data::DatasetOptions opts;
  opts.scale = 0.01;
  opts.workload_size = 3;
  data::DatasetBundle a = data::MakeImdbJob(opts);
  data::DatasetBundle b = data::MakeImdbJob(opts);
  EXPECT_EQ(a.db->TotalRows(), b.db->TotalRows());
  auto ta = a.db->GetTable("title").value();
  auto tb = b.db->GetTable("title").value();
  for (uint32_t r = 0; r < std::min<size_t>(ta->num_rows(), 20); ++r) {
    EXPECT_EQ(ta->GetRow(r)[1].AsString(), tb->GetRow(r)[1].AsString());
  }
  for (size_t i = 0; i < a.workload.size(); ++i) {
    EXPECT_EQ(a.workload.query(i).ToSql(), b.workload.query(i).ToSql());
  }
}

TEST(DatasetTest, FlightsAggregateWorkloadCategories) {
  data::DatasetOptions opts;
  opts.scale = 0.02;
  data::DatasetBundle flights = data::MakeFlights(opts);
  metric::Workload aggs =
      data::MakeFlightsAggregateWorkload(flights, 12, 99);
  ASSERT_EQ(aggs.size(), 12u);
  size_t grouped = 0;
  for (const auto& q : aggs.queries()) {
    EXPECT_TRUE(q.stmt.HasAggregates()) << q.ToSql();
    if (!q.stmt.group_by.empty()) ++grouped;
  }
  EXPECT_EQ(grouped, 6u);  // alternating grouped / ungrouped
  // All bind + execute.
  exec::QueryEngine engine;
  storage::DatabaseView view(flights.db.get());
  for (const auto& q : aggs.queries()) {
    auto bound = sql::Bind(q.stmt, *flights.db);
    ASSERT_TRUE(bound.ok()) << q.ToSql();
    ASSERT_TRUE(engine.Execute(bound.value(), view).ok()) << q.ToSql();
  }
}

}  // namespace
}  // namespace workloadgen
}  // namespace asqp
