#include "asqp_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unordered_map>

namespace asqp {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// C++ token scanner (structure mirrors src/sql/lexer.cc: one forward pass,
// flat token vector, positions kept for diagnostics).
// ---------------------------------------------------------------------------

enum class TokenType : uint8_t {
  kIdent,   // identifiers and keywords, undifferentiated
  kNumber,  // pp-number (integers, floats, digit separators, exponents)
  kString,  // string literal (escaped or raw), value not unescaped
  kChar,    // character literal
  kPunct,   // operators / punctuation; `::` `->` `...` kept as one token
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t line = 0;  // 1-based
  size_t col = 0;   // 1-based
};

/// Per-line NOLINT suppressions: line -> rule names ("*" = every rule).
using SuppressionMap = std::unordered_map<size_t, std::unordered_set<std::string>>;

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Record `// NOLINT`, `// NOLINT(rule,...)`, and the NEXTLINE variant.
void ParseNolint(const std::string& comment, size_t line,
                 SuppressionMap* suppressions) {
  size_t pos = comment.find("NOLINT");
  if (pos == std::string::npos) return;
  size_t target = line;
  size_t after = pos + 6;  // past "NOLINT"
  if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
    target = line + 1;
    after = pos + 14;
  }
  auto& rules = (*suppressions)[target];
  if (after < comment.size() && comment[after] == '(') {
    const size_t close = comment.find(')', after);
    const std::string list =
        comment.substr(after + 1, close == std::string::npos
                                      ? std::string::npos
                                      : close - after - 1);
    std::string name;
    std::stringstream ss(list);
    while (std::getline(ss, name, ',')) {
      const size_t b = name.find_first_not_of(" \t");
      const size_t e = name.find_last_not_of(" \t");
      if (b != std::string::npos) rules.insert(name.substr(b, e - b + 1));
    }
  } else {
    rules.insert("*");
  }
}

class Scanner {
 public:
  explicit Scanner(const std::string& source) : src_(source) {}

  void Run(std::vector<Token>* tokens, SuppressionMap* suppressions) {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        Advance();
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      if (c == '#' && at_line_start_) {
        SkipPreprocessorLine();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && Peek(1) == '/') {
        const size_t start_line = line_;
        std::string text;
        while (i_ < src_.size() && src_[i_] != '\n') {
          text += src_[i_];
          Advance();
        }
        ParseNolint(text, start_line, suppressions);
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        const size_t start_line = line_;
        std::string text;
        Advance();
        Advance();
        while (i_ < src_.size() &&
               !(src_[i_] == '*' && Peek(1) == '/')) {
          text += src_[i_];
          Advance();
        }
        Advance();  // '*'
        Advance();  // '/'
        ParseNolint(text, start_line, suppressions);
        continue;
      }
      Token tok;
      tok.line = line_;
      tok.col = col_;
      if (IsIdentStart(c)) {
        std::string word;
        while (i_ < src_.size() && IsIdentChar(src_[i_])) {
          word += src_[i_];
          Advance();
        }
        // Raw-string prefix: R"( ... )" (also u8R / uR / UR / LR).
        if (!word.empty() && word.back() == 'R' && i_ < src_.size() &&
            src_[i_] == '"') {
          tok.type = TokenType::kString;
          tok.text = ScanRawString();
        } else {
          tok.type = TokenType::kIdent;
          tok.text = std::move(word);
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        // pp-number: digits, idents, '.', digit separators, exponent signs.
        std::string num;
        while (i_ < src_.size()) {
          const char d = src_[i_];
          if (IsIdentChar(d) || d == '.' ||
              (d == '\'' && IsIdentChar(Peek(1)))) {
            const bool exponent =
                (d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
                (Peek(1) == '+' || Peek(1) == '-');
            num += d;
            Advance();
            if (exponent) {
              num += src_[i_];
              Advance();
            }
          } else {
            break;
          }
        }
        tok.type = TokenType::kNumber;
        tok.text = std::move(num);
      } else if (c == '"') {
        tok.type = TokenType::kString;
        tok.text = ScanQuoted('"');
      } else if (c == '\'') {
        tok.type = TokenType::kChar;
        tok.text = ScanQuoted('\'');
      } else {
        tok.type = TokenType::kPunct;
        if (c == ':' && Peek(1) == ':') {
          tok.text = "::";
          Advance();
          Advance();
        } else if (c == '-' && Peek(1) == '>') {
          tok.text = "->";
          Advance();
          Advance();
        } else if (c == '.' && Peek(1) == '.' && Peek(2) == '.') {
          tok.text = "...";
          Advance();
          Advance();
          Advance();
        } else {
          tok.text = std::string(1, c);
          Advance();
        }
      }
      tokens->push_back(std::move(tok));
    }
    Token end;
    end.type = TokenType::kEnd;
    end.line = line_;
    end.col = col_;
    tokens->push_back(std::move(end));
  }

 private:
  char Peek(size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  void Advance() {
    if (i_ >= src_.size()) return;
    if (src_[i_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++i_;
  }

  void SkipPreprocessorLine() {
    while (i_ < src_.size()) {
      if (src_[i_] == '\\' && Peek(1) == '\n') {
        Advance();
        Advance();
        continue;
      }
      if (src_[i_] == '\n') break;
      Advance();
    }
  }

  std::string ScanQuoted(char quote) {
    std::string text;
    Advance();  // opening quote
    while (i_ < src_.size() && src_[i_] != quote && src_[i_] != '\n') {
      if (src_[i_] == '\\') Advance();
      text += src_[i_];
      Advance();
    }
    Advance();  // closing quote (or newline on a malformed literal)
    return text;
  }

  std::string ScanRawString() {
    // At the opening '"' of R"delim( ... )delim".
    Advance();
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(') {
      delim += src_[i_];
      Advance();
    }
    Advance();  // '('
    const std::string close = ")" + delim + "\"";
    std::string text;
    while (i_ < src_.size() && src_.compare(i_, close.size(), close) != 0) {
      text += src_[i_];
      Advance();
    }
    for (size_t k = 0; k < close.size() && i_ < src_.size(); ++k) Advance();
    return text;
  }

  const std::string& src_;
  size_t i_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
  bool at_line_start_ = true;
};

// ---------------------------------------------------------------------------
// Rule helpers
// ---------------------------------------------------------------------------

bool IsPunct(const Token& t, const char* text) {
  return t.type == TokenType::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.type == TokenType::kIdent && t.text == text;
}

/// Skip a balanced punct pair starting at `i` (tokens[i] must be `open`).
/// Returns the index one past the matching closer, or tokens.size().
size_t SkipBalanced(const std::vector<Token>& tokens, size_t i,
                    const char* open, const char* close) {
  size_t depth = 0;
  for (; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], open)) {
      ++depth;
    } else if (IsPunct(tokens[i], close)) {
      if (--depth == 0) return i + 1;
    }
  }
  return tokens.size();
}

/// Skip a balanced template argument list starting at a `<`. `>>` lexes as
/// two '>' tokens, so plain depth counting works. Bails (returning the
/// boundary index) on `;` / `{` / `}` — the `<` was a comparison, not an
/// argument list.
size_t SkipAngles(const std::vector<Token>& tokens, size_t i, size_t end) {
  size_t depth = 0;
  for (size_t j = i; j < end; ++j) {
    if (IsPunct(tokens[j], "<")) {
      ++depth;
    } else if (IsPunct(tokens[j], ">")) {
      if (--depth == 0) return j + 1;
    } else if (IsPunct(tokens[j], ";") || IsPunct(tokens[j], "{") ||
               IsPunct(tokens[j], "}")) {
      return j;
    }
  }
  return end;
}

/// Skip to one past the next `;` at bracket depth zero.
size_t SkipToSemi(const std::vector<Token>& tokens, size_t i, size_t end) {
  int paren = 0, brace = 0, square = 0;
  for (size_t j = i; j < end; ++j) {
    const Token& t = tokens[j];
    if (t.type != TokenType::kPunct) continue;
    if (t.text == "(") ++paren;
    else if (t.text == ")") --paren;
    else if (t.text == "{") ++brace;
    else if (t.text == "}") --brace;
    else if (t.text == "[") ++square;
    else if (t.text == "]") --square;
    else if (t.text == ";" && paren <= 0 && brace <= 0 && square <= 0)
      return j + 1;
  }
  return end;
}

/// Path scoping. Paths are repo-relative with forward slashes.
bool IsUnderUtil(const std::string& path) {
  return path.rfind("src/util/", 0) == 0;
}
bool IsLibraryCode(const std::string& path) {
  return path.rfind("src/", 0) == 0;
}
bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

const std::unordered_set<std::string>& LockTypes() {
  static const std::unordered_set<std::string> kLockTypes = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  return kLockTypes;
}

const std::unordered_set<std::string>& DeclKeywords() {
  static const std::unordered_set<std::string> kDeclKeywords = {
      "return", "if",    "while", "for",    "else",  "do",
      "switch", "case",  "new",   "delete", "throw", "goto",
      "break",  "continue", "sizeof", "co_return", "co_await"};
  return kDeclKeywords;
}

// ---------------------------------------------------------------------------
// Structure parser: a recursive-descent walk over the token stream tracking
// namespaces, class bodies, member declarations, and function bodies. Both
// the index builder (DeclCollector) and the lock-discipline checker
// (GuardChecker) derive from it; the hooks fire with the unqualified class
// name ("" at namespace / free-function scope).
// ---------------------------------------------------------------------------

class StructureParser {
 public:
  explicit StructureParser(const std::vector<Token>& tokens)
      : tokens_(tokens) {}
  virtual ~StructureParser() = default;

  void Traverse() {
    size_t end = tokens_.size();
    while (end > 0 && tokens_[end - 1].type == TokenType::kEnd) --end;
    ParseRegion(0, end, "");
  }

 protected:
  /// A data member of `cls`. `guard_mu` is the ASQP_GUARDED_BY argument
  /// ("" when unannotated); flags say whether the declared type mentioned
  /// std::mutex / std::atomic (or condition_variable).
  virtual void OnField(const std::string& /*cls*/, const std::string& /*name*/,
                       const std::string& /*guard_mu*/, bool /*is_mutex*/,
                       bool /*is_atomic*/, const Token& /*at*/) {}
  virtual void OnExcludesMethod(const std::string& /*cls*/,
                                const std::string& /*method*/,
                                const std::string& /*mu*/) {}
  /// `cls` was declared with `enclosing` as its lexical parent ("" at
  /// namespace scope) — or, for `struct Outer::Inner`, its qualifier.
  virtual void OnClass(const std::string& /*cls*/,
                       const std::string& /*enclosing*/) {}
  /// A function body: tokens_[body_open] is '{', tokens_[body_close] the
  /// matching '}'. `cls` is the owning class (from lexical scope or a
  /// `Class::Method` qualifier), `is_ctor_dtor` covers constructors,
  /// destructors, and initializer lists (member writes there are
  /// pre-publication and exempt from guard rules).
  virtual void OnFunctionBody(const std::string& /*cls*/,
                              const std::string& /*name*/,
                              bool /*is_ctor_dtor*/,
                              const std::unordered_set<std::string>& /*params*/,
                              size_t /*body_open*/, size_t /*body_close*/) {}

  const std::vector<Token>& tokens_;

 private:
  void ParseRegion(size_t begin, size_t end, const std::string& cls) {
    size_t i = begin;
    while (i < end) {
      const size_t next = ParseElement(i, end, cls);
      i = next > i ? next : i + 1;  // always make progress
    }
  }

  size_t ParseElement(size_t i, size_t end, const std::string& cls) {
    const Token& t = tokens_[i];
    if (t.type == TokenType::kPunct) {
      if (t.text == "{") return SkipBalanced(tokens_, i, "{", "}");
      if (t.text == "[") return SkipBalanced(tokens_, i, "[", "]");
      return i + 1;  // stray ';', '}' of an outer region, etc.
    }
    if (t.type != TokenType::kIdent) return i + 1;
    const std::string& w = t.text;
    if ((w == "public" || w == "private" || w == "protected") && i + 1 < end &&
        IsPunct(tokens_[i + 1], ":")) {
      return i + 2;
    }
    if (w == "template") {
      if (i + 1 < end && IsPunct(tokens_[i + 1], "<")) {
        return SkipAngles(tokens_, i + 1, end);
      }
      return i + 1;
    }
    if (w == "using" || w == "typedef" || w == "friend" ||
        w == "static_assert") {
      return SkipToSemi(tokens_, i, end);
    }
    if (w == "namespace") return ParseNamespace(i, end, cls);
    if (w == "enum") {
      size_t j = i + 1;
      while (j < end && !IsPunct(tokens_[j], "{") && !IsPunct(tokens_[j], ";"))
        ++j;
      if (j < end && IsPunct(tokens_[j], "{"))
        j = SkipBalanced(tokens_, j, "{", "}");
      return SkipToSemi(tokens_, j, end);
    }
    if (w == "class" || w == "struct" || w == "union") {
      return ParseClass(i, end, cls);
    }
    return ParseDeclOrFunction(i, end, cls);
  }

  size_t ParseNamespace(size_t i, size_t end, const std::string& cls) {
    size_t j = i + 1;
    while (j < end &&
           (tokens_[j].type == TokenType::kIdent || IsPunct(tokens_[j], "::")))
      ++j;
    if (j < end && IsPunct(tokens_[j], "{")) {
      const size_t close = SkipBalanced(tokens_, j, "{", "}");
      ParseRegion(j + 1, close > 0 ? close - 1 : j + 1, cls);
      return close;
    }
    return SkipToSemi(tokens_, i, end);  // namespace alias
  }

  size_t ParseClass(size_t i, size_t end, const std::string& cls) {
    size_t j = i + 1;
    if (j < end && IsPunct(tokens_[j], "[")) {
      j = SkipBalanced(tokens_, j, "[", "]");  // [[nodiscard]] etc.
    }
    std::vector<std::string> chain;  // Outer::Inner qualifiers + name
    while (j < end && tokens_[j].type == TokenType::kIdent &&
           tokens_[j].text != "final") {
      chain.push_back(tokens_[j].text);
      ++j;
      if (j < end && IsPunct(tokens_[j], "::")) {
        ++j;
        continue;
      }
      break;
    }
    if (j < end && IsIdent(tokens_[j], "final")) ++j;
    if (j < end && IsPunct(tokens_[j], ":")) {
      // Base clause: scan to the body, skipping template arguments.
      while (j < end && !IsPunct(tokens_[j], "{") && !IsPunct(tokens_[j], ";")) {
        if (IsPunct(tokens_[j], "<")) {
          j = SkipAngles(tokens_, j, end);
          continue;
        }
        ++j;
      }
    }
    if (j >= end || !IsPunct(tokens_[j], "{") || chain.empty()) {
      // Forward declaration (`class X;`), elaborated type in a declaration
      // (`struct stat st;`), or an anonymous aggregate — skip its extent.
      if (j < end && IsPunct(tokens_[j], "{")) {
        j = SkipBalanced(tokens_, j, "{", "}");
      }
      return SkipToSemi(tokens_, j, end);
    }
    const std::string name = chain.back();
    const std::string enclosing =
        chain.size() >= 2 ? chain[chain.size() - 2] : cls;
    OnClass(name, enclosing);
    const size_t close = SkipBalanced(tokens_, j, "{", "}");
    ParseRegion(j + 1, close > 0 ? close - 1 : j + 1, name);
    // `struct X { ... } member_;` declares a field of the enclosing class.
    size_t k = close;
    std::string trailing;
    size_t trailing_tok = 0;
    while (k < end && !IsPunct(tokens_[k], ";")) {
      if (tokens_[k].type == TokenType::kIdent) {
        trailing = tokens_[k].text;
        trailing_tok = k;
      }
      ++k;
    }
    if (!trailing.empty() && !cls.empty()) {
      OnField(cls, trailing, "", false, false, tokens_[trailing_tok]);
    }
    return k < end ? k + 1 : end;
  }

  /// Parse the parenthesized argument of ASQP_GUARDED_BY / ASQP_EXCLUDES at
  /// `i` (the macro name token); store the final path component of the
  /// argument (`shard.mu` -> `mu`) in *mu and return the index past ')'.
  size_t ParseMacroMutex(size_t i, size_t end, std::string* mu) {
    size_t j = i + 1;
    if (j >= end || !IsPunct(tokens_[j], "(")) return i + 1;
    const size_t close = SkipBalanced(tokens_, j, "(", ")");
    for (size_t q = j + 1; q + 1 < close; ++q) {
      if (tokens_[q].type == TokenType::kIdent) *mu = tokens_[q].text;
    }
    return close;
  }

  size_t SkipOperator(size_t i, size_t end) {
    // `operator==(...)`, `operator()(...)`, conversion operators. Find the
    // parameter list, then skip declaration or body. Operator bodies are
    // not walked — none of the annotated classes overload operators.
    size_t j = i + 1;
    if (j + 1 < end && IsPunct(tokens_[j], "(") && IsPunct(tokens_[j + 1], ")")) {
      j += 2;  // operator()
    } else {
      while (j < end && !IsPunct(tokens_[j], "(") && !IsPunct(tokens_[j], ";"))
        ++j;
    }
    if (j >= end || !IsPunct(tokens_[j], "(")) return SkipToSemi(tokens_, j, end);
    j = SkipBalanced(tokens_, j, "(", ")");
    while (j < end && !IsPunct(tokens_[j], ";") && !IsPunct(tokens_[j], "{"))
      ++j;
    if (j < end && IsPunct(tokens_[j], "{"))
      return SkipBalanced(tokens_, j, "{", "}");
    return SkipToSemi(tokens_, j, end);
  }

  size_t ParseDeclOrFunction(size_t i, size_t end, const std::string& cls) {
    size_t j = i;
    std::string last_ident, guard_field, guard_mu;
    bool saw_mutex = false, saw_atomic = false;
    size_t name_tok = i;
    while (j < end) {
      const Token& t = tokens_[j];
      if (t.type == TokenType::kIdent) {
        const std::string& w = t.text;
        if (w == "operator") return SkipOperator(j, end);
        if (w == "ASQP_GUARDED_BY") {
          guard_field = last_ident;
          j = ParseMacroMutex(j, end, &guard_mu);
          continue;
        }
        if (w == "ASQP_EXCLUDES") {
          // On a declaration reached outside the function branch (e.g. a
          // macro-heavy decl); treat generically below via the function
          // path. Here just skip it.
          std::string ignored;
          j = ParseMacroMutex(j, end, &ignored);
          continue;
        }
        if (w == "mutex" || w == "shared_mutex" || w == "recursive_mutex" ||
            w == "timed_mutex") {
          saw_mutex = true;
        }
        if (w == "atomic" || w == "atomic_flag" || w == "condition_variable" ||
            w == "condition_variable_any") {
          saw_atomic = true;
        }
        last_ident = w;
        name_tok = j;
        ++j;
        if (j < end && IsPunct(tokens_[j], "<")) {
          j = SkipAngles(tokens_, j, end);
        }
        continue;
      }
      if (IsPunct(t, "[")) {
        j = SkipBalanced(tokens_, j, "[", "]");
        continue;
      }
      if (IsPunct(t, "(")) {
        if (!last_ident.empty()) {
          return ParseFunctionRest(j, end, cls, last_ident, name_tok);
        }
        return SkipToSemi(tokens_, j, end);
      }
      if (IsPunct(t, "=")) {
        EmitField(cls, guard_field.empty() ? last_ident : guard_field,
                  guard_mu, saw_mutex, saw_atomic, name_tok);
        return SkipToSemi(tokens_, j, end);
      }
      if (IsPunct(t, "{")) {
        // Brace-initialized member: `std::atomic<int> x_{0};`
        EmitField(cls, guard_field.empty() ? last_ident : guard_field,
                  guard_mu, saw_mutex, saw_atomic, name_tok);
        const size_t close = SkipBalanced(tokens_, j, "{", "}");
        return SkipToSemi(tokens_, close, end);
      }
      if (IsPunct(t, ";")) {
        EmitField(cls, guard_field.empty() ? last_ident : guard_field,
                  guard_mu, saw_mutex, saw_atomic, name_tok);
        return j + 1;
      }
      ++j;  // '::', '*', '&', '~', ',', '<' from a bailed SkipAngles, ...
    }
    return end;
  }

  void EmitField(const std::string& cls, const std::string& field,
                 const std::string& mu, bool is_mutex, bool is_atomic,
                 size_t name_tok) {
    if (cls.empty() || field.empty()) return;
    OnField(cls, field, mu, is_mutex, is_atomic, tokens_[name_tok]);
  }

  size_t ParseFunctionRest(size_t paren, size_t end, const std::string& cls,
                           const std::string& name, size_t name_tok) {
    const bool is_dtor = name_tok > 0 && IsPunct(tokens_[name_tok - 1], "~");
    // Walk back over `Qualifier::` chains to find the owning class of an
    // out-of-line definition (`AnswerCache::Lookup`, `util::CircuitBreaker::
    // Allow` — the innermost qualifier wins).
    std::string owner = cls;
    {
      size_t b = is_dtor ? name_tok - 1 : name_tok;
      std::string innermost;
      while (b >= 2 && IsPunct(tokens_[b - 1], "::") &&
             tokens_[b - 2].type == TokenType::kIdent) {
        if (innermost.empty()) innermost = tokens_[b - 2].text;
        b -= 2;
      }
      if (!innermost.empty()) owner = innermost;
    }
    const bool is_ctor_dtor = is_dtor || name == owner;
    const size_t params_end = SkipBalanced(tokens_, paren, "(", ")");
    std::unordered_set<std::string> params;
    {
      size_t depth = 0;
      for (size_t q = paren; q < params_end; ++q) {
        const Token& t = tokens_[q];
        if (IsPunct(t, "(")) {
          ++depth;
          continue;
        }
        if (IsPunct(t, ")")) {
          --depth;
          continue;
        }
        if (IsPunct(t, "<")) {
          const size_t a = SkipAngles(tokens_, q, params_end);
          if (a > q) q = a - 1;
          continue;
        }
        if (depth != 1 || t.type != TokenType::kIdent) continue;
        if (q + 1 < params_end &&
            (IsPunct(tokens_[q + 1], ",") || IsPunct(tokens_[q + 1], ")") ||
             IsPunct(tokens_[q + 1], "="))) {
          params.insert(t.text);
        }
      }
    }
    // Post-parameter qualifiers.
    size_t k = params_end;
    std::string excl_mu;
    while (k < end) {
      const Token& t = tokens_[k];
      if (t.type == TokenType::kIdent) {
        const std::string& w = t.text;
        if (w == "const" || w == "override" || w == "final" ||
            w == "volatile" || w == "mutable" || w == "try") {
          ++k;
          continue;
        }
        if (w == "noexcept") {
          ++k;
          if (k < end && IsPunct(tokens_[k], "("))
            k = SkipBalanced(tokens_, k, "(", ")");
          continue;
        }
        if (w == "ASQP_EXCLUDES") {
          k = ParseMacroMutex(k, end, &excl_mu);
          continue;
        }
        break;
      }
      if (IsPunct(t, "&")) {
        ++k;
        continue;
      }
      if (IsPunct(t, "->")) {  // trailing return type
        ++k;
        while (k < end &&
               (tokens_[k].type == TokenType::kIdent ||
                IsPunct(tokens_[k], "::") || IsPunct(tokens_[k], "*") ||
                IsPunct(tokens_[k], "&"))) {
          ++k;
          if (k < end && IsPunct(tokens_[k], "<"))
            k = SkipAngles(tokens_, k, end);
        }
        continue;
      }
      break;
    }
    if (!excl_mu.empty() && !owner.empty()) {
      OnExcludesMethod(owner, name, excl_mu);
    }
    if (k >= end) return end;
    if (IsPunct(tokens_[k], ";")) return k + 1;  // pure declaration
    if (IsPunct(tokens_[k], "=")) {
      return SkipToSemi(tokens_, k, end);  // = default / = delete / = 0
    }
    if (IsPunct(tokens_[k], ":")) {
      // Constructor initializer list: advance to the body '{' — a '{'
      // preceded by ')' or '}' opens the body; any other '{' is a member
      // brace-init.
      ++k;
      while (k < end) {
        if (IsPunct(tokens_[k], "(")) {
          k = SkipBalanced(tokens_, k, "(", ")");
          continue;
        }
        if (IsPunct(tokens_[k], "<")) {
          const size_t a = SkipAngles(tokens_, k, end);
          if (a > k) {
            k = a;
            continue;
          }
        }
        if (IsPunct(tokens_[k], "{")) {
          if (k > 0 &&
              (IsPunct(tokens_[k - 1], ")") || IsPunct(tokens_[k - 1], "}"))) {
            break;
          }
          k = SkipBalanced(tokens_, k, "{", "}");
          continue;
        }
        if (IsPunct(tokens_[k], ";")) return k + 1;  // malformed; bail
        ++k;
      }
    }
    if (k < end && IsPunct(tokens_[k], "{")) {
      const size_t close = SkipBalanced(tokens_, k, "{", "}");
      if (close > 0) {
        OnFunctionBody(owner, name, is_ctor_dtor, params, k, close - 1);
      }
      return close;
    }
    // Not a function after all (e.g. a macro invocation element).
    return SkipToSemi(tokens_, k, end);
  }
};

// ---------------------------------------------------------------------------
// DeclCollector: pass-1 structure walk filling the GuardIndex.
// ---------------------------------------------------------------------------

class DeclCollector : public StructureParser {
 public:
  DeclCollector(const std::string& path, const std::vector<Token>& tokens,
                const SuppressionMap& suppressions, GuardIndex* out)
      : StructureParser(tokens),
        path_(path),
        suppressions_(suppressions),
        out_(out) {}

 protected:
  void OnClass(const std::string& cls, const std::string& enclosing) override {
    if (!enclosing.empty()) out_->parents[cls].insert(enclosing);
  }

  void OnField(const std::string& cls, const std::string& name,
               const std::string& guard_mu, bool is_mutex, bool is_atomic,
               const Token& at) override {
    if (!guard_mu.empty()) {
      out_->guarded_fields[cls][name] = guard_mu;
    }
    // Atomics and condition variables need no guard and cannot carry one;
    // keep them out of the completeness universe.
    if (!is_atomic) out_->fields[cls].insert(name);
    if (is_mutex && IsLibraryCode(path_) && !Suppressed(at.line)) {
      out_->mutex_decls.push_back(
          GuardIndex::MutexDecl{cls, name, path_, at.line, at.col});
    }
  }

  void OnExcludesMethod(const std::string& cls, const std::string& method,
                        const std::string& mu) override {
    out_->excluded_methods[cls][method] = mu;
  }

 private:
  bool Suppressed(size_t line) const {
    auto it = suppressions_.find(line);
    return it != suppressions_.end() &&
           (it->second.count("*") > 0 ||
            it->second.count("asqp-missing-guard") > 0);
  }

  const std::string& path_;
  const SuppressionMap& suppressions_;
  GuardIndex* out_;
};

// ---------------------------------------------------------------------------
// GuardChecker: pass-2 structure walk enforcing asqp-guard-violation and
// the write-completeness half of asqp-missing-guard inside function bodies.
// ---------------------------------------------------------------------------

using ReportFn = std::function<void(const Token&, const std::string& rule,
                                    std::string message)>;

class GuardChecker : public StructureParser {
 public:
  GuardChecker(const std::string& path, const std::vector<Token>& tokens,
               const AnalysisIndex& index, ReportFn report)
      : StructureParser(tokens),
        library_(IsLibraryCode(path)),
        index_(index),
        report_(std::move(report)) {
    for (const auto& [child, parents] : index_.guards.parents) {
      for (const auto& parent : parents) children_[parent].insert(child);
    }
  }

 protected:
  void OnFunctionBody(const std::string& cls, const std::string& /*name*/,
                      bool is_ctor_dtor,
                      const std::unordered_set<std::string>& params,
                      size_t body_open, size_t body_close) override {
    const std::vector<std::string> scope = ScopeSet(cls);
    std::unordered_set<std::string> locals = params;
    std::unordered_set<std::string> value_locals;
    std::vector<std::vector<std::string>> held(1);

    for (size_t q = body_open + 1; q <= body_close && q < tokens_.size(); ++q) {
      const Token& t = tokens_[q];
      if (t.type == TokenType::kPunct) {
        if (t.text == "{") {
          held.emplace_back();
        } else if (t.text == "}") {
          if (held.size() > 1) held.pop_back();
        }
        continue;
      }
      if (t.type != TokenType::kIdent) continue;
      const std::string& w = t.text;
      if (LockTypes().count(w) > 0) {
        const size_t adv = HandleLockDecl(q, body_close, &held, &locals);
        if (adv > q) q = adv;
        continue;
      }
      if (w == "auto" && q + 1 <= body_close && IsPunct(tokens_[q + 1], "[")) {
        // Structured binding: every introduced name is a local.
        const size_t e = SkipBalanced(tokens_, q + 1, "[", "]");
        for (size_t b = q + 2; b + 1 < e; ++b) {
          if (tokens_[b].type == TokenType::kIdent) {
            locals.insert(tokens_[b].text);
            value_locals.insert(tokens_[b].text);
          }
        }
        q = e > q ? e - 1 : q;
        continue;
      }
      if (q == 0) continue;
      const Token& prev = tokens_[q - 1];
      const bool after_type_name = prev.type == TokenType::kIdent &&
                                   DeclKeywords().count(prev.text) == 0;
      const bool after_ptr_ref =
          (IsPunct(prev, "*") || IsPunct(prev, "&")) && q >= 2 &&
          tokens_[q - 2].type == TokenType::kIdent &&
          DeclKeywords().count(tokens_[q - 2].text) == 0;
      if (after_type_name || after_ptr_ref) {
        locals.insert(w);
        if (after_type_name) value_locals.insert(w);
        continue;
      }
      if (is_ctor_dtor) continue;  // pre/post-publication writes are exempt
      if (IsPunct(prev, "::")) continue;  // qualified name, not a member
      const bool member = IsPunct(prev, ".") || IsPunct(prev, "->");
      std::string base;
      if (member && q >= 2 && tokens_[q - 2].type == TokenType::kIdent) {
        base = tokens_[q - 2].text;
      }
      const bool own = !member || base == "this";
      if (!member && locals.count(w) > 0) continue;  // local shadows field
      if (member && !base.empty() && base != "this" &&
          value_locals.count(base) > 0) {
        continue;  // value-local copy: its members are private to the copy
      }
      // Self-deadlock: calling a same-class ASQP_EXCLUDES(mu) method while
      // holding mu.
      if (own && q + 1 <= body_close && IsPunct(tokens_[q + 1], "(")) {
        const std::string* excl = LookupIn(index_.guards.excluded_methods,
                                           scope, w);
        if (excl != nullptr && HeldMutex(held, *excl)) {
          report_(t, "asqp-guard-violation",
                  "'" + w + "' is ASQP_EXCLUDES(" + *excl +
                      ") but is called while '" + *excl +
                      "' is held (self-deadlock)");
          continue;
        }
      }
      const std::string* mu = LookupIn(index_.guards.guarded_fields, scope, w);
      if (mu != nullptr) {
        if (!HeldMutex(held, *mu)) {
          report_(t, "asqp-guard-violation",
                  "field '" + w + "' is ASQP_GUARDED_BY(" + *mu +
                      ") but accessed without holding '" + *mu + "'");
        }
        continue;
      }
      // Completeness: a field written while some mutex is held but carrying
      // no annotation rots the contract (src/ only).
      if (library_ && HeldAny(held) && IsFieldOf(scope, w) && IsWriteAt(q)) {
        report_(t, "asqp-missing-guard",
                "field '" + w +
                    "' is written under a held lock but has no "
                    "ASQP_GUARDED_BY annotation (see src/util/annotations.h)");
      }
    }
  }

 private:
  /// cls plus every transitively nested class (Shard in AnswerCache, ...):
  /// a method of the outer class may touch nested-class members through a
  /// reference, and nested state names the owner's protocol.
  std::vector<std::string> ScopeSet(const std::string& cls) const {
    std::vector<std::string> scope;
    if (cls.empty()) return scope;
    scope.push_back(cls);
    for (size_t i = 0; i < scope.size(); ++i) {
      auto it = children_.find(scope[i]);
      if (it == children_.end()) continue;
      for (const auto& child : it->second) {
        if (std::find(scope.begin(), scope.end(), child) == scope.end()) {
          scope.push_back(child);
        }
      }
    }
    return scope;
  }

  template <typename Map>
  static const std::string* LookupIn(const Map& map,
                                     const std::vector<std::string>& scope,
                                     const std::string& name) {
    for (const auto& cls : scope) {
      auto it = map.find(cls);
      if (it == map.end()) continue;
      auto jt = it->second.find(name);
      if (jt != it->second.end()) return &jt->second;
    }
    return nullptr;
  }

  bool IsFieldOf(const std::vector<std::string>& scope,
                 const std::string& name) const {
    for (const auto& cls : scope) {
      auto it = index_.guards.fields.find(cls);
      if (it != index_.guards.fields.end() && it->second.count(name) > 0) {
        return true;
      }
    }
    return false;
  }

  static bool HeldMutex(const std::vector<std::vector<std::string>>& held,
                        const std::string& mu) {
    for (const auto& frame : held) {
      if (std::find(frame.begin(), frame.end(), mu) != frame.end()) {
        return true;
      }
    }
    return false;
  }

  static bool HeldAny(const std::vector<std::vector<std::string>>& held) {
    for (const auto& frame : held) {
      if (!frame.empty()) return true;
    }
    return false;
  }

  /// `std::lock_guard<std::mutex> lock(mu_);` — record the locked mutexes
  /// (last path component of each argument) in the current scope frame and
  /// the lock variable as a local. defer_lock / try_to_lock arguments mean
  /// the mutex is NOT held at declaration; adopt_lock means it is.
  size_t HandleLockDecl(size_t q, size_t body_close,
                        std::vector<std::vector<std::string>>* held,
                        std::unordered_set<std::string>* locals) {
    size_t j = q + 1;
    if (j <= body_close && IsPunct(tokens_[j], "<")) {
      j = SkipAngles(tokens_, j, body_close + 1);
    }
    if (j > body_close || tokens_[j].type != TokenType::kIdent) return q;
    const std::string var = tokens_[j].text;
    ++j;
    if (j > body_close ||
        (!IsPunct(tokens_[j], "(") && !IsPunct(tokens_[j], "{"))) {
      return q;  // a mention of the type, not a declaration
    }
    const bool paren = IsPunct(tokens_[j], "(");
    const size_t close = paren ? SkipBalanced(tokens_, j, "(", ")")
                               : SkipBalanced(tokens_, j, "{", "}");
    std::vector<std::string> mutexes;
    std::string last_ident;
    bool deferred = false;
    size_t depth = 0;
    for (size_t b = j; b < close; ++b) {
      const Token& t = tokens_[b];
      if (t.type == TokenType::kPunct) {
        if (t.text == "(" || t.text == "{" || t.text == "[") ++depth;
        else if (t.text == ")" || t.text == "}" || t.text == "]") --depth;
        else if (t.text == "," && depth == 1 && !last_ident.empty()) {
          mutexes.push_back(last_ident);
          last_ident.clear();
        }
        continue;
      }
      if (t.type != TokenType::kIdent) continue;
      if (t.text == "defer_lock" || t.text == "try_to_lock") {
        deferred = true;
        last_ident.clear();
      } else if (t.text == "adopt_lock") {
        last_ident.clear();  // tag, not a mutex; prior args stay held
      } else {
        last_ident = t.text;
      }
    }
    if (!last_ident.empty()) mutexes.push_back(last_ident);
    locals->insert(var);
    if (!deferred) {
      for (auto& mu : mutexes) held->back().push_back(mu);
    }
    return close > q ? close - 1 : q;
  }

  const bool library_;
  const AnalysisIndex& index_;
  ReportFn report_;
  std::unordered_map<std::string, std::unordered_set<std::string>> children_;

 public:
  /// Write detection at token q (a field name): assignment, compound
  /// assignment, ++/--, subscript-then-assign, or a mutating container
  /// method. Shared with the Linter's parallel-lambda rule philosophy but
  /// scoped to one token.
  bool IsWriteAt(size_t q) const {
    size_t v = q;  // rightmost token of the written lvalue
    if (v + 1 < tokens_.size() && IsPunct(tokens_[v + 1], "[")) {
      const size_t e = SkipBalanced(tokens_, v + 1, "[", "]");
      v = e > 0 ? e - 1 : v;
    }
    if (v + 1 >= tokens_.size()) return false;
    const Token& next = tokens_[v + 1];
    const Token* n2 = v + 2 < tokens_.size() ? &tokens_[v + 2] : nullptr;
    if (IsPunct(next, "=") && (n2 == nullptr || !IsPunct(*n2, "="))) {
      return true;
    }
    if (next.type == TokenType::kPunct && next.text.size() == 1 &&
        std::string("+-*/%|^&").find(next.text[0]) != std::string::npos &&
        n2 != nullptr && IsPunct(*n2, "=")) {
      return true;
    }
    if ((IsPunct(next, "+") && n2 != nullptr && IsPunct(*n2, "+")) ||
        (IsPunct(next, "-") && n2 != nullptr && IsPunct(*n2, "-"))) {
      return true;  // x++
    }
    // ++x / --x: for a member access `++shard.bytes` the operator sits
    // before the base identifier.
    size_t lead = q;
    if (q >= 2 && (IsPunct(tokens_[q - 1], ".") || IsPunct(tokens_[q - 1], "->"))) {
      lead = q - 2;
    }
    if (lead >= 2 && ((IsPunct(tokens_[lead - 1], "+") &&
                       IsPunct(tokens_[lead - 2], "+")) ||
                      (IsPunct(tokens_[lead - 1], "-") &&
                       IsPunct(tokens_[lead - 2], "-")))) {
      return true;
    }
    if ((IsPunct(next, ".") || IsPunct(next, "->")) && n2 != nullptr &&
        n2->type == TokenType::kIdent && v + 3 < tokens_.size() &&
        IsPunct(tokens_[v + 3], "(")) {
      static const std::unordered_set<std::string> kMutating = {
          "push_back", "pop_back", "insert",  "emplace", "emplace_back",
          "clear",     "resize",   "erase",   "append",  "assign",
          "push_front", "pop_front", "push",  "pop",     "splice"};
      return kMutating.count(n2->text) > 0;
    }
    return false;
  }
};

class Linter {
 public:
  Linter(const std::string& path, const AnalysisIndex& index,
         const std::vector<Token>& tokens, const SuppressionMap& suppressions)
      : path_(path),
        index_(index),
        tokens_(tokens),
        suppressions_(suppressions) {}

  std::vector<Diagnostic> Run() {
    CollectLocalVoidFunctions();
    CheckDiscardedStatus();
    CheckNondeterminism();
    CheckNakedNew();
    CheckCatchAll();
    CheckUnsynchronizedSharedWrite();
    CheckGuardDiscipline();
    CheckUnpolledLoops();
    CheckFaultPoints();
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return std::tie(a.line, a.col, a.rule) <
                       std::tie(b.line, b.col, b.rule);
              });
    return std::move(diags_);
  }

 private:
  void Report(const Token& at, const std::string& rule, std::string message) {
    auto it = suppressions_.find(at.line);
    if (it != suppressions_.end() &&
        (it->second.count("*") > 0 || it->second.count(rule) > 0)) {
      return;
    }
    diags_.push_back(Diagnostic{path_, at.line, at.col, rule,
                                std::move(message)});
  }

  /// Names declared in THIS file with a void return type. A bare call to
  /// one can never discard a Status even if another TU declares a
  /// same-named Status-returning function (the registry is name-keyed
  /// tree-wide, so without this a local helper shadowing e.g.
  /// Database::AddTable would be a false positive).
  void CollectLocalVoidFunctions() {
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (!IsIdent(tokens_[i], "void")) continue;
      size_t j = i + 1;
      while (j + 2 < tokens_.size() && tokens_[j].type == TokenType::kIdent &&
             IsPunct(tokens_[j + 1], "::") &&
             tokens_[j + 2].type == TokenType::kIdent) {
        j += 2;
      }
      if (j + 1 < tokens_.size() && tokens_[j].type == TokenType::kIdent &&
          IsPunct(tokens_[j + 1], "(")) {
        local_void_.insert(tokens_[j].text);
      }
    }
  }

  // --- asqp-discarded-status -----------------------------------------------
  // A statement of the form `chain.of.Calls(args);` whose final callee is a
  // known Status/Result-returning function discards the result. Calls whose
  // statement begins with an ASQP_* macro (ASQP_RETURN_NOT_OK, ...) are the
  // sanctioned consumption points and are skipped.
  void CheckDiscardedStatus() {
    bool at_statement_start = true;
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (at_statement_start && t.type == TokenType::kIdent) {
        const size_t matched = MatchDiscardedCall(i);
        if (matched > 0) {
          i = matched - 1;  // resume at the ';'
          at_statement_start = true;
          continue;
        }
      }
      at_statement_start =
          IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}") ||
          IsIdent(t, "else") || IsIdent(t, "do") || IsIdent(t, "try");
    }
  }

  /// Try to match `ident (:: ident | . ident | -> ident)* ( ... ) ;` at
  /// token `i`. On a match whose callee is registered (and whose leading
  /// identifier is not an ASQP_* macro), report and return the index of the
  /// trailing ';'. Returns 0 when the shape does not match or is benign.
  size_t MatchDiscardedCall(size_t i) {
    const std::string& head = tokens_[i].text;
    size_t callee = i;
    size_t j = i + 1;
    while (j + 1 < tokens_.size() &&
           (IsPunct(tokens_[j], "::") || IsPunct(tokens_[j], ".") ||
            IsPunct(tokens_[j], "->")) &&
           tokens_[j + 1].type == TokenType::kIdent) {
      callee = j + 1;
      j += 2;
    }
    if (j >= tokens_.size() || !IsPunct(tokens_[j], "(")) return 0;
    const size_t after = SkipBalanced(tokens_, j, "(", ")");
    if (after >= tokens_.size() || !IsPunct(tokens_[after], ";")) return 0;
    if (head.rfind("ASQP_", 0) == 0) return 0;
    const std::string& name = tokens_[callee].text;
    if (index_.functions.status_returning.count(name) == 0) return 0;
    if (callee == i && local_void_.count(name) > 0) return 0;
    Report(tokens_[callee], "asqp-discarded-status",
           "result of Status/Result-returning call '" + name +
               "' is discarded; consume it, ASQP_RETURN_NOT_OK it, or "
               "cast to void with a comment");
    return after;
  }

  // --- asqp-nondeterminism -------------------------------------------------
  void CheckNondeterminism() {
    static const std::unordered_set<std::string> kBannedEverywhere = {
        "rand",         "srand",          "drand48",
        "lrand48",      "random_device",  "default_random_engine",
        "random_shuffle"};
    static const std::unordered_set<std::string> kWallClock = {
        "system_clock", "gettimeofday", "clock_gettime",
        "localtime",    "gmtime",       "mktime"};
    const bool library = IsLibraryCode(path_) && !IsUnderUtil(path_);
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.type != TokenType::kIdent) continue;
      if (kBannedEverywhere.count(t.text) > 0) {
        Report(t, "asqp-nondeterminism",
               "'" + t.text +
                   "' is non-deterministic; use util::Rng with an explicit "
                   "seed");
        continue;
      }
      if (t.text == "mt19937" || t.text == "mt19937_64") {
        CheckMt19937(i);
        continue;
      }
      if (library && kWallClock.count(t.text) > 0) {
        Report(t, "asqp-nondeterminism",
               "wall-clock read ('" + t.text +
                   "') in library code; use util::Stopwatch / util::Deadline "
                   "(steady_clock) or accept a Deadline parameter");
        continue;
      }
      if (library && t.text == "time" && i > 0 &&
          IsPunct(tokens_[i - 1], "::") && IsPunct(tokens_[i + 1], "(")) {
        Report(t, "asqp-nondeterminism",
               "wall-clock read ('time') in library code");
      }
    }
  }

  /// `std::mt19937 gen;` / `mt19937()` / `mt19937{}` are unseeded (the
  /// default seed hides reproducibility bugs); a constructor argument makes
  /// it explicit and is allowed (though util::Rng is preferred).
  void CheckMt19937(size_t i) {
    size_t j = i + 1;
    if (j < tokens_.size() && tokens_[j].type == TokenType::kIdent) ++j;
    if (j >= tokens_.size()) return;
    const bool unseeded =
        IsPunct(tokens_[j], ";") ||
        (IsPunct(tokens_[j], "(") && j + 1 < tokens_.size() &&
         IsPunct(tokens_[j + 1], ")")) ||
        (IsPunct(tokens_[j], "{") && j + 1 < tokens_.size() &&
         IsPunct(tokens_[j + 1], "}"));
    if (unseeded) {
      Report(tokens_[i], "asqp-nondeterminism",
             "unseeded '" + tokens_[i].text +
                 "'; pass an explicit seed (or use util::Rng)");
    }
  }

  // --- asqp-naked-new ------------------------------------------------------
  void CheckNakedNew() {
    if (IsUnderUtil(path_)) return;
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.type != TokenType::kIdent) continue;
      if (t.text != "new" && t.text != "delete") continue;
      // `= delete;` (deleted function) and `operator new/delete` are
      // declarations, not allocations.
      if (i > 0 && IsIdent(tokens_[i - 1], "operator")) continue;
      if (t.text == "delete" && i > 0 && IsPunct(tokens_[i - 1], "=") &&
          (IsPunct(tokens_[i + 1], ";") || IsPunct(tokens_[i + 1], ","))) {
        continue;
      }
      Report(t, "asqp-naked-new",
             "naked '" + t.text +
                 "' outside src/util; use std::make_unique / make_shared or "
                 "a container");
    }
  }

  // --- asqp-catch-all ------------------------------------------------------
  void CheckCatchAll() {
    for (size_t i = 0; i + 3 < tokens_.size(); ++i) {
      if (!IsIdent(tokens_[i], "catch")) continue;
      if (!IsPunct(tokens_[i + 1], "(") || !IsPunct(tokens_[i + 2], "...") ||
          !IsPunct(tokens_[i + 3], ")")) {
        continue;
      }
      size_t body = i + 4;
      if (body >= tokens_.size() || !IsPunct(tokens_[body], "{")) continue;
      const size_t end = SkipBalanced(tokens_, body, "{", "}");
      bool converts = false;
      for (size_t k = body + 1; k + 1 < end; ++k) {
        const Token& b = tokens_[k];
        if (b.type != TokenType::kIdent) continue;
        if (b.text == "throw" || b.text == "rethrow_exception" ||
            b.text == "current_exception" || b.text == "exception_ptr" ||
            b.text == "abort" || b.text == "terminate" ||
            b.text.rfind("ASQP_", 0) == 0 ||
            b.text.find("Status") != std::string::npos ||
            b.text.find("Error") != std::string::npos) {
          converts = true;
          break;
        }
      }
      if (!converts) {
        Report(tokens_[i], "asqp-catch-all",
               "catch (...) swallows the exception; rethrow, convert to a "
               "Status, or capture with std::current_exception");
      }
      i = end > i ? end - 1 : i;
    }
  }

  // --- asqp-unsynchronized-shared-write ------------------------------------
  // A lambda passed to ParallelFor / ParallelForChunked /
  // ParallelReduceOrdered runs concurrently on pool threads. A local
  // captured by reference and mutated inside the lambda body — direct or
  // compound assignment, ++/--, a member assignment, or a mutating
  // container method — is a data race unless the body synchronizes.
  // Writes through a subscript (`parts[chunk] = ...`, the sanctioned
  // per-chunk-slot pattern), atomic member calls, and bodies that mention
  // a mutex/atomic are not flagged. Calls whose literal count argument is
  // 0 or 1 run entirely on the caller thread and are exempt.
  void CheckUnsynchronizedSharedWrite() {
    static const std::unordered_set<std::string> kParallelEntry = {
        "ParallelFor", "ParallelForChunked", "ParallelReduceOrdered"};
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i].type != TokenType::kIdent ||
          kParallelEntry.count(tokens_[i].text) == 0) {
        continue;
      }
      size_t j = i + 1;
      if (IsPunct(tokens_[j], "<")) {
        // Explicit template arguments (ParallelReduceOrdered<Local>).
        size_t depth = 0;
        for (; j < tokens_.size(); ++j) {
          if (IsPunct(tokens_[j], "<")) ++depth;
          if (IsPunct(tokens_[j], ">") && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      if (j >= tokens_.size() || !IsPunct(tokens_[j], "(")) continue;
      const size_t call_end = SkipBalanced(tokens_, j, "(", ")");
      if (j + 2 < tokens_.size() && tokens_[j + 1].type == TokenType::kNumber &&
          (tokens_[j + 1].text == "0" || tokens_[j + 1].text == "1") &&
          IsPunct(tokens_[j + 2], ",")) {
        i = call_end - 1;  // caller-thread-only: no concurrency
        continue;
      }
      for (size_t k = j + 1; k < call_end; ++k) {
        if (!IsPunct(tokens_[k], "[")) continue;
        const size_t lambda_end =
            CheckParallelLambda(k, call_end, tokens_[i].text);
        if (lambda_end == 0) continue;
        k = lambda_end - 1;
      }
      i = call_end - 1;
    }
  }

  /// Analyze one lambda whose capture list opens at `open` inside a
  /// parallel-entry call ending at `call_end`. Returns the index one past
  /// the lambda body, or 0 if no lambda shape was found.
  size_t CheckParallelLambda(size_t open, size_t call_end,
                             const std::string& entry) {
    const size_t cap_end = SkipBalanced(tokens_, open, "[", "]");
    if (cap_end >= call_end) return 0;
    bool by_ref_default = false;
    std::unordered_set<std::string> by_ref;
    for (size_t q = open + 1; q + 1 < cap_end; ++q) {
      if (!IsPunct(tokens_[q], "&")) continue;
      if (tokens_[q + 1].type == TokenType::kIdent) {
        by_ref.insert(tokens_[q + 1].text);
      } else {
        by_ref_default = true;  // bare [&]
      }
    }
    if (open + 2 == cap_end && IsPunct(tokens_[open + 1], "&")) {
      by_ref_default = true;
    }

    // The lambda's parameters and body-local declarations are private per
    // invocation — never shared.
    std::unordered_set<std::string> locals;
    size_t p = cap_end;
    if (p < call_end && IsPunct(tokens_[p], "(")) {
      const size_t params_end = SkipBalanced(tokens_, p, "(", ")");
      for (size_t q = p + 1; q + 1 < params_end; ++q) {
        if (tokens_[q].type == TokenType::kIdent &&
            (IsPunct(tokens_[q + 1], ",") || q + 1 == params_end - 1)) {
          locals.insert(tokens_[q].text);
        }
      }
      p = params_end;
    }
    while (p < call_end && !IsPunct(tokens_[p], "{")) ++p;
    if (p >= call_end) return 0;
    const size_t body_end = SkipBalanced(tokens_, p, "{", "}");

    static const std::unordered_set<std::string> kSyncTokens = {
        "mutex", "lock_guard", "unique_lock", "scoped_lock",
        "Mutex", "MutexLock",  "shared_mutex"};
    static const std::unordered_set<std::string> kAtomicMethods = {
        "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "fetch_xor",
        "store",     "exchange",  "compare_exchange_weak",
        "compare_exchange_strong"};
    static const std::unordered_set<std::string> kMutatingMethods = {
        "push_back", "pop_back", "insert", "emplace", "emplace_back",
        "clear",     "resize",   "erase",  "append",  "assign"};

    // Pass 1: bail if the body synchronizes; collect body-local
    // declarations (`Type name`, `auto name`, `Type* name`, `Type& name`).
    for (size_t q = p + 1; q + 1 < body_end; ++q) {
      const Token& t = tokens_[q];
      if (t.type != TokenType::kIdent) continue;
      if (kSyncTokens.count(t.text) > 0) return body_end;
      const Token& prev = tokens_[q - 1];
      const bool after_type_name = prev.type == TokenType::kIdent &&
                                   DeclKeywords().count(prev.text) == 0;
      const bool after_ptr_ref =
          (IsPunct(prev, "*") || IsPunct(prev, "&")) && q >= 2 &&
          tokens_[q - 2].type == TokenType::kIdent &&
          DeclKeywords().count(tokens_[q - 2].text) == 0;
      if (after_type_name || after_ptr_ref) locals.insert(t.text);
    }

    // Pass 2: flag unsynchronized writes to by-ref captures.
    std::unordered_set<std::string> reported;
    for (size_t q = p + 1; q + 1 < body_end; ++q) {
      const Token& t = tokens_[q];
      if (t.type != TokenType::kIdent) continue;
      // A member name (`x.member`, `p->field`) is judged through its base
      // identifier, not on its own.
      if (IsPunct(tokens_[q - 1], ".") || IsPunct(tokens_[q - 1], "->")) {
        continue;
      }
      if (locals.count(t.text) > 0 || reported.count(t.text) > 0) continue;
      if (!by_ref_default && by_ref.count(t.text) == 0) continue;
      const Token& next = tokens_[q + 1];
      if (IsPunct(next, "[")) continue;  // per-chunk slot write
      const Token* n2 = q + 2 < body_end ? &tokens_[q + 2] : nullptr;
      const Token* n3 = q + 3 < body_end ? &tokens_[q + 3] : nullptr;
      bool mutated = false;
      if (IsPunct(next, "=") && (n2 == nullptr || !IsPunct(*n2, "=")) &&
          !IsPunct(tokens_[q - 1], "=") && !IsPunct(tokens_[q - 1], "!") &&
          !IsPunct(tokens_[q - 1], "<") && !IsPunct(tokens_[q - 1], ">")) {
        mutated = true;  // x = ...
      } else if (next.type == TokenType::kPunct && next.text.size() == 1 &&
                 std::string("+-*/%|^&").find(next.text[0]) !=
                     std::string::npos &&
                 n2 != nullptr && IsPunct(*n2, "=")) {
        mutated = true;  // x += ...
      } else if ((IsPunct(next, "+") && n2 != nullptr && IsPunct(*n2, "+")) ||
                 (IsPunct(next, "-") && n2 != nullptr && IsPunct(*n2, "-")) ||
                 (q >= 2 && IsPunct(tokens_[q - 1], "+") &&
                  IsPunct(tokens_[q - 2], "+")) ||
                 (q >= 2 && IsPunct(tokens_[q - 1], "-") &&
                  IsPunct(tokens_[q - 2], "-"))) {
        mutated = true;  // x++ / ++x
      } else if ((IsPunct(next, ".") || IsPunct(next, "->")) &&
                 n2 != nullptr && n2->type == TokenType::kIdent &&
                 n3 != nullptr) {
        if (IsPunct(*n3, "(")) {
          mutated = kMutatingMethods.count(n2->text) > 0 &&
                    kAtomicMethods.count(n2->text) == 0;
        } else if (IsPunct(*n3, "=") &&
                   (q + 4 >= body_end || !IsPunct(tokens_[q + 4], "="))) {
          mutated = true;  // x.member = ...
        }
      }
      if (!mutated) continue;
      reported.insert(t.text);
      Report(t, "asqp-unsynchronized-shared-write",
             "'" + t.text + "' is captured by reference and mutated inside "
             "a " + entry + " lambda without synchronization; write into a "
             "per-chunk slot, use an atomic, or guard it with a mutex");
    }
    return body_end;
  }

  // --- asqp-guard-violation / asqp-missing-guard (write completeness) ------
  void CheckGuardDiscipline() {
    GuardChecker checker(
        path_, tokens_, index_,
        [this](const Token& at, const std::string& rule, std::string msg) {
          Report(at, rule, std::move(msg));
        });
    checker.Traverse();
  }

  // --- asqp-unpolled-loop --------------------------------------------------
  // Execution- and AQP-layer loops over data must poll a deadline; a loop
  // body with more than kUnpolledLoopStatementThreshold statements that
  // never mentions an ExecContext / DeadlineTicker poll can starve the
  // interactivity contract. Nested loops are counted independently — a
  // poll anywhere inside a loop's extent (header included) satisfies it.
  void CheckUnpolledLoops() {
    const bool scoped = path_.rfind("src/exec/", 0) == 0 ||
                        path_.rfind("src/aqp/", 0) == 0;
    if (!scoped) return;
    static const std::unordered_set<std::string> kPoll = {
        "Tick", "Check", "CheckRows", "Expired", "DeadlineTicker",
        "ExecContext"};
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.type != TokenType::kIdent) continue;
      size_t body_open = 0;
      if (t.text == "for" || t.text == "while") {
        if (!IsPunct(tokens_[i + 1], "(")) continue;
        const size_t header_end = SkipBalanced(tokens_, i + 1, "(", ")");
        if (header_end >= tokens_.size() ||
            !IsPunct(tokens_[header_end], "{")) {
          continue;  // single-statement body, or the `while` of a do-while
        }
        body_open = header_end;
      } else if (t.text == "do") {
        if (!IsPunct(tokens_[i + 1], "{")) continue;
        body_open = i + 1;
      } else {
        continue;
      }
      const size_t body_end = SkipBalanced(tokens_, body_open, "{", "}");
      size_t stmts = 0;
      for (size_t k = body_open + 1; k + 1 < body_end; ++k) {
        if (IsPunct(tokens_[k], ";")) ++stmts;
      }
      size_t search_end = body_end;
      if (t.text == "do" && body_end + 1 < tokens_.size() &&
          IsIdent(tokens_[body_end], "while") &&
          IsPunct(tokens_[body_end + 1], "(")) {
        search_end = SkipBalanced(tokens_, body_end + 1, "(", ")");
      }
      if (stmts <= kUnpolledLoopStatementThreshold) continue;
      bool polled = false;
      for (size_t k = i; k < search_end; ++k) {
        if (tokens_[k].type == TokenType::kIdent &&
            kPoll.count(tokens_[k].text) > 0) {
          polled = true;
          break;
        }
      }
      if (!polled) {
        Report(t, "asqp-unpolled-loop",
               "loop body has " + std::to_string(stmts) +
                   " statements (threshold " +
                   std::to_string(kUnpolledLoopStatementThreshold) +
                   ") and never polls ExecContext/DeadlineTicker; poll the "
                   "deadline or justify with NOLINT(asqp-unpolled-loop)");
      }
    }
  }

  // --- asqp-unregistered-fault-point ---------------------------------------
  // Library code only: the registry keeps production fault points
  // discoverable and cross-checked against tests; the injector's own unit
  // tests (tests/resilience_test.cc) arm synthetic names on purpose.
  void CheckFaultPoints() {
    if (!index_.has_fault_registry || !IsLibraryCode(path_)) return;
    for (size_t i = 0; i + 2 < tokens_.size(); ++i) {
      if (!IsIdent(tokens_[i], "ASQP_FAULT_POINT")) continue;
      if (!IsPunct(tokens_[i + 1], "(")) continue;
      if (tokens_[i + 2].type != TokenType::kString) continue;
      if (index_.fault_points.count(tokens_[i + 2].text) == 0) {
        Report(tokens_[i + 2], "asqp-unregistered-fault-point",
               "fault point \"" + tokens_[i + 2].text +
                   "\" is not registered in src/util/fault_points.h; add it "
                   "to kFaultPoints (and exercise it from a test)");
      }
    }
  }

  const std::string& path_;
  const AnalysisIndex& index_;
  const std::vector<Token>& tokens_;
  const SuppressionMap& suppressions_;
  std::unordered_set<std::string> local_void_;
  std::vector<Diagnostic> diags_;
};

// ---------------------------------------------------------------------------
// File collection
// ---------------------------------------------------------------------------

std::vector<std::filesystem::path> CollectSourceFiles(
    const std::string& root) {
  static const char* kDirs[] = {"src", "tests", "bench", "examples", "tools"};
  std::vector<std::filesystem::path> files;
  for (const char* dir : kDirs) {
    const std::filesystem::path base = std::filesystem::path(root) / dir;
    std::error_code ec;
    if (!std::filesystem::is_directory(base, ec)) continue;
    for (auto it = std::filesystem::recursive_directory_iterator(base, ec);
         it != std::filesystem::recursive_directory_iterator();
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".cc" || ext == ".h") files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFileOrEmpty(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Repo-relative paths we lint live under these top-level directories;
/// anything else in the compile database (fetched third-party sources,
/// generated files in the build tree) is out of scope.
bool IsLintablePath(const std::string& rel) {
  static const char* kTop[] = {"src/", "tests/", "bench/", "examples/",
                               "tools/"};
  for (const char* top : kTop) {
    if (rel.rfind(top, 0) == 0) return true;
  }
  return false;
}

void CollectStatusFunctionsFromTokens(const std::vector<Token>& tokens,
                                      FunctionRegistry* registry) {
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].type != TokenType::kIdent) continue;
    size_t j = 0;
    if (tokens[i].text == "Status") {
      j = i + 1;
    } else if (tokens[i].text == "Result" && IsPunct(tokens[i + 1], "<")) {
      // Skip the balanced template argument list. `>>` closers appear as
      // two '>' tokens, so plain depth counting is enough.
      size_t depth = 0;
      size_t k = i + 1;
      for (; k < tokens.size(); ++k) {
        if (IsPunct(tokens[k], "<")) ++depth;
        if (IsPunct(tokens[k], ">") && --depth == 0) break;
      }
      j = k + 1;
    } else {
      continue;
    }
    // The declared name may be namespace- or class-qualified
    // (`Status io::Sync(...)`, `Status Table::AppendRow(...)`); register
    // the final identifier of the chain.
    while (j + 2 < tokens.size() && tokens[j].type == TokenType::kIdent &&
           IsPunct(tokens[j + 1], "::") &&
           tokens[j + 2].type == TokenType::kIdent) {
      j += 2;
    }
    if (j + 1 < tokens.size() && tokens[j].type == TokenType::kIdent &&
        IsPunct(tokens[j + 1], "(")) {
      registry->status_returning.insert(tokens[j].text);
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendDiagnosticJson(const Diagnostic& d, const char* status,
                          std::ostringstream* ss) {
  *ss << "{\"file\":\"" << JsonEscape(d.file) << "\",\"line\":" << d.line
      << ",\"col\":" << d.col << ",\"rule\":\"" << JsonEscape(d.rule)
      << "\",\"message\":\"" << JsonEscape(d.message) << "\",\"status\":\""
      << status << "\"}";
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream ss;
  ss << file << ":" << line << ":" << col << ": error: [" << rule << "] "
     << message;
  return ss.str();
}

void BuildIndex(const std::string& path, const std::string& source,
                AnalysisIndex* index) {
  std::vector<Token> tokens;
  SuppressionMap suppressions;
  Scanner(source).Run(&tokens, &suppressions);
  CollectStatusFunctionsFromTokens(tokens, &index->functions);
  DeclCollector(path, tokens, suppressions, &index->guards).Traverse();
  if (EndsWith(path, "util/fault_points.h")) {
    for (const Token& t : tokens) {
      if (t.type == TokenType::kString) index->fault_points.insert(t.text);
    }
    index->has_fault_registry = true;
  }
}

std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& source,
                                   const AnalysisIndex& index) {
  std::vector<Token> tokens;
  SuppressionMap suppressions;
  Scanner(source).Run(&tokens, &suppressions);
  return Linter(path, index, tokens, suppressions).Run();
}

void CheckMutexCoverage(const AnalysisIndex& index,
                        std::vector<Diagnostic>* out) {
  std::unordered_map<std::string, std::unordered_set<std::string>> children;
  for (const auto& [child, parents] : index.guards.parents) {
    for (const auto& parent : parents) children[parent].insert(child);
  }
  for (const auto& decl : index.guards.mutex_decls) {
    std::vector<std::string> scope{decl.cls};
    for (size_t i = 0; i < scope.size(); ++i) {
      auto it = children.find(scope[i]);
      if (it == children.end()) continue;
      for (const auto& c : it->second) {
        if (std::find(scope.begin(), scope.end(), c) == scope.end()) {
          scope.push_back(c);
        }
      }
    }
    bool referenced = false;
    for (const auto& cls : scope) {
      auto g = index.guards.guarded_fields.find(cls);
      if (g != index.guards.guarded_fields.end()) {
        for (const auto& [field, mu] : g->second) {
          if (mu == decl.name) referenced = true;
        }
      }
      auto e = index.guards.excluded_methods.find(cls);
      if (e != index.guards.excluded_methods.end()) {
        for (const auto& [method, mu] : e->second) {
          if (mu == decl.name) referenced = true;
        }
      }
      if (referenced) break;
    }
    if (!referenced) {
      out->push_back(Diagnostic{
          decl.file, decl.line, decl.col, "asqp-missing-guard",
          "mutex '" + decl.name + "' of '" + decl.cls +
              "' guards no annotated field and no ASQP_EXCLUDES method; "
              "declare its locking protocol (see src/util/annotations.h)"});
    }
  }
}

std::vector<std::string> CollectLintFiles(
    const std::string& root, const std::string& compile_commands) {
  namespace fs = std::filesystem;
  std::vector<std::string> rels;
  std::unordered_set<std::string> seen;
  const auto add = [&](const std::string& rel) {
    if (IsLintablePath(rel) && seen.insert(rel).second) rels.push_back(rel);
  };
  std::string db;
  if (!compile_commands.empty()) {
    db = ReadFileOrEmpty(fs::path(compile_commands));
  }
  if (!db.empty()) {
    // Extract every "file" value. The database is machine-generated flat
    // JSON; a targeted string scan avoids a JSON dependency.
    size_t pos = 0;
    while ((pos = db.find("\"file\"", pos)) != std::string::npos) {
      pos += 6;
      const size_t colon = db.find(':', pos);
      if (colon == std::string::npos) break;
      const size_t q1 = db.find('"', colon);
      if (q1 == std::string::npos) break;
      const size_t q2 = db.find('"', q1 + 1);
      if (q2 == std::string::npos) break;
      const std::string file = db.substr(q1 + 1, q2 - q1 - 1);
      pos = q2 + 1;
      std::error_code ec;
      const fs::path rel = fs::relative(fs::path(file), root, ec);
      if (ec || rel.empty()) continue;
      const std::string r = rel.lexically_normal().generic_string();
      if (!EndsWith(r, ".cc") && !EndsWith(r, ".h")) continue;
      if (fs::exists(fs::path(root) / r, ec)) add(r);
    }
    // Transitive closure of in-repo #include "..." headers, so annotated
    // headers are linted even though they are not translation units.
    for (size_t i = 0; i < rels.size(); ++i) {
      const std::string src = ReadFileOrEmpty(fs::path(root) / rels[i]);
      const fs::path including_dir = (fs::path(root) / rels[i]).parent_path();
      size_t lp = 0;
      while (lp < src.size()) {
        size_t le = src.find('\n', lp);
        if (le == std::string::npos) le = src.size();
        std::string line = src.substr(lp, le - lp);
        lp = le + 1;
        size_t b = line.find_first_not_of(" \t");
        if (b == std::string::npos || line[b] != '#') continue;
        b = line.find_first_not_of(" \t", b + 1);
        if (b == std::string::npos || line.compare(b, 7, "include") != 0) {
          continue;
        }
        const size_t o = line.find('"', b + 7);
        if (o == std::string::npos) continue;  // <system> include
        const size_t c = line.find('"', o + 1);
        if (c == std::string::npos) continue;
        const std::string inc = line.substr(o + 1, c - o - 1);
        const fs::path bases[] = {
            fs::path(root) / "src",   fs::path(root) / "tools",
            fs::path(root) / "bench", fs::path(root) / "tests",
            fs::path(root),           including_dir};
        for (const fs::path& base : bases) {
          std::error_code ec;
          const fs::path candidate = base / inc;
          if (!fs::exists(candidate, ec)) continue;
          const fs::path rel = fs::relative(candidate, root, ec);
          if (!ec && !rel.empty()) {
            add(rel.lexically_normal().generic_string());
          }
          break;
        }
      }
    }
  }
  if (rels.empty()) {
    for (const auto& p : CollectSourceFiles(root)) {
      std::error_code ec;
      const fs::path rel = fs::relative(p, root, ec);
      if (!ec) add(rel.generic_string());
    }
  }
  std::sort(rels.begin(), rels.end());
  return rels;
}

size_t LintTree(const std::string& root, const std::string& compile_commands,
                std::vector<Diagnostic>* out) {
  namespace fs = std::filesystem;
  const std::vector<std::string> files =
      CollectLintFiles(root, compile_commands);
  AnalysisIndex index;
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const auto& rel : files) {
    sources.emplace_back(rel, ReadFileOrEmpty(fs::path(root) / rel));
    BuildIndex(rel, sources.back().second, &index);
  }
  std::vector<Diagnostic> diags;
  for (const auto& [rel, source] : sources) {
    for (Diagnostic& d : LintSource(rel, source, index)) {
      diags.push_back(std::move(d));
    }
  }
  CheckMutexCoverage(index, &diags);
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.col, a.rule) <
                     std::tie(b.file, b.line, b.col, b.rule);
            });
  const size_t violations = diags.size();
  if (out != nullptr) {
    for (Diagnostic& d : diags) out->push_back(std::move(d));
  }
  return violations;
}

// ---------------------------------------------------------------------------
// Baseline & JSON report
// ---------------------------------------------------------------------------

std::string BaselineKey(const Diagnostic& d) {
  return d.file + "\t" + d.rule + "\t" + d.message;
}

bool LoadBaseline(const std::string& path, Baseline* baseline) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    ++baseline->entries[line];
  }
  return true;
}

std::string SerializeBaseline(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> keys;
  keys.reserve(diags.size());
  for (const Diagnostic& d : diags) keys.push_back(BaselineKey(d));
  std::sort(keys.begin(), keys.end());
  std::ostringstream ss;
  ss << "# asqp-lint baseline: grandfathered findings that predate a rule.\n"
     << "# One `file<TAB>rule<TAB>message` per line; multiplicity counts.\n"
     << "# Do not add entries for new code — fix the finding or NOLINT it\n"
     << "# with a justification. Regenerate with --write-baseline.\n";
  for (const std::string& key : keys) ss << key << "\n";
  return ss.str();
}

void PartitionAgainstBaseline(const std::vector<Diagnostic>& diags,
                              const Baseline& baseline,
                              std::vector<Diagnostic>* grandfathered,
                              std::vector<Diagnostic>* fresh) {
  std::unordered_map<std::string, size_t> remaining = baseline.entries;
  for (const Diagnostic& d : diags) {
    auto it = remaining.find(BaselineKey(d));
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      grandfathered->push_back(d);
    } else {
      fresh->push_back(d);
    }
  }
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& fresh,
                              const std::vector<Diagnostic>& grandfathered) {
  std::ostringstream ss;
  ss << "{\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : fresh) {
    if (!first) ss << ",";
    first = false;
    AppendDiagnosticJson(d, "new", &ss);
  }
  for (const Diagnostic& d : grandfathered) {
    if (!first) ss << ",";
    first = false;
    AppendDiagnosticJson(d, "grandfathered", &ss);
  }
  ss << "],\"total\":" << fresh.size() + grandfathered.size()
     << ",\"new\":" << fresh.size()
     << ",\"grandfathered\":" << grandfathered.size() << "}";
  return ss.str();
}

}  // namespace lint
}  // namespace asqp
