#include "asqp_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unordered_map>

namespace asqp {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// C++ token scanner (structure mirrors src/sql/lexer.cc: one forward pass,
// flat token vector, positions kept for diagnostics).
// ---------------------------------------------------------------------------

enum class TokenType : uint8_t {
  kIdent,   // identifiers and keywords, undifferentiated
  kNumber,  // pp-number (integers, floats, digit separators, exponents)
  kString,  // string literal (escaped or raw), value not unescaped
  kChar,    // character literal
  kPunct,   // operators / punctuation; `::` `->` `...` kept as one token
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t line = 0;  // 1-based
  size_t col = 0;   // 1-based
};

/// Per-line NOLINT suppressions: line -> rule names ("*" = every rule).
using SuppressionMap = std::unordered_map<size_t, std::unordered_set<std::string>>;

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Record `// NOLINT`, `// NOLINT(rule,...)`, and the NEXTLINE variant.
void ParseNolint(const std::string& comment, size_t line,
                 SuppressionMap* suppressions) {
  size_t pos = comment.find("NOLINT");
  if (pos == std::string::npos) return;
  size_t target = line;
  size_t after = pos + 6;  // past "NOLINT"
  if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
    target = line + 1;
    after = pos + 14;
  }
  auto& rules = (*suppressions)[target];
  if (after < comment.size() && comment[after] == '(') {
    const size_t close = comment.find(')', after);
    const std::string list =
        comment.substr(after + 1, close == std::string::npos
                                      ? std::string::npos
                                      : close - after - 1);
    std::string name;
    std::stringstream ss(list);
    while (std::getline(ss, name, ',')) {
      const size_t b = name.find_first_not_of(" \t");
      const size_t e = name.find_last_not_of(" \t");
      if (b != std::string::npos) rules.insert(name.substr(b, e - b + 1));
    }
  } else {
    rules.insert("*");
  }
}

class Scanner {
 public:
  explicit Scanner(const std::string& source) : src_(source) {}

  void Run(std::vector<Token>* tokens, SuppressionMap* suppressions) {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        Advance();
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      if (c == '#' && at_line_start_) {
        SkipPreprocessorLine();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && Peek(1) == '/') {
        const size_t start_line = line_;
        std::string text;
        while (i_ < src_.size() && src_[i_] != '\n') {
          text += src_[i_];
          Advance();
        }
        ParseNolint(text, start_line, suppressions);
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        const size_t start_line = line_;
        std::string text;
        Advance();
        Advance();
        while (i_ < src_.size() &&
               !(src_[i_] == '*' && Peek(1) == '/')) {
          text += src_[i_];
          Advance();
        }
        Advance();  // '*'
        Advance();  // '/'
        ParseNolint(text, start_line, suppressions);
        continue;
      }
      Token tok;
      tok.line = line_;
      tok.col = col_;
      if (IsIdentStart(c)) {
        std::string word;
        while (i_ < src_.size() && IsIdentChar(src_[i_])) {
          word += src_[i_];
          Advance();
        }
        // Raw-string prefix: R"( ... )" (also u8R / uR / UR / LR).
        if (!word.empty() && word.back() == 'R' && i_ < src_.size() &&
            src_[i_] == '"') {
          tok.type = TokenType::kString;
          tok.text = ScanRawString();
        } else {
          tok.type = TokenType::kIdent;
          tok.text = std::move(word);
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        // pp-number: digits, idents, '.', digit separators, exponent signs.
        std::string num;
        while (i_ < src_.size()) {
          const char d = src_[i_];
          if (IsIdentChar(d) || d == '.' ||
              (d == '\'' && IsIdentChar(Peek(1)))) {
            const bool exponent =
                (d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
                (Peek(1) == '+' || Peek(1) == '-');
            num += d;
            Advance();
            if (exponent) {
              num += src_[i_];
              Advance();
            }
          } else {
            break;
          }
        }
        tok.type = TokenType::kNumber;
        tok.text = std::move(num);
      } else if (c == '"') {
        tok.type = TokenType::kString;
        tok.text = ScanQuoted('"');
      } else if (c == '\'') {
        tok.type = TokenType::kChar;
        tok.text = ScanQuoted('\'');
      } else {
        tok.type = TokenType::kPunct;
        if (c == ':' && Peek(1) == ':') {
          tok.text = "::";
          Advance();
          Advance();
        } else if (c == '-' && Peek(1) == '>') {
          tok.text = "->";
          Advance();
          Advance();
        } else if (c == '.' && Peek(1) == '.' && Peek(2) == '.') {
          tok.text = "...";
          Advance();
          Advance();
          Advance();
        } else {
          tok.text = std::string(1, c);
          Advance();
        }
      }
      tokens->push_back(std::move(tok));
    }
    Token end;
    end.type = TokenType::kEnd;
    end.line = line_;
    end.col = col_;
    tokens->push_back(std::move(end));
  }

 private:
  char Peek(size_t ahead) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }

  void Advance() {
    if (i_ >= src_.size()) return;
    if (src_[i_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++i_;
  }

  void SkipPreprocessorLine() {
    while (i_ < src_.size()) {
      if (src_[i_] == '\\' && Peek(1) == '\n') {
        Advance();
        Advance();
        continue;
      }
      if (src_[i_] == '\n') break;
      Advance();
    }
  }

  std::string ScanQuoted(char quote) {
    std::string text;
    Advance();  // opening quote
    while (i_ < src_.size() && src_[i_] != quote && src_[i_] != '\n') {
      if (src_[i_] == '\\') Advance();
      text += src_[i_];
      Advance();
    }
    Advance();  // closing quote (or newline on a malformed literal)
    return text;
  }

  std::string ScanRawString() {
    // At the opening '"' of R"delim( ... )delim".
    Advance();
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(') {
      delim += src_[i_];
      Advance();
    }
    Advance();  // '('
    const std::string close = ")" + delim + "\"";
    std::string text;
    while (i_ < src_.size() && src_.compare(i_, close.size(), close) != 0) {
      text += src_[i_];
      Advance();
    }
    for (size_t k = 0; k < close.size() && i_ < src_.size(); ++k) Advance();
    return text;
  }

  const std::string& src_;
  size_t i_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
  bool at_line_start_ = true;
};

// ---------------------------------------------------------------------------
// Rule helpers
// ---------------------------------------------------------------------------

bool IsPunct(const Token& t, const char* text) {
  return t.type == TokenType::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.type == TokenType::kIdent && t.text == text;
}

/// Skip a balanced punct pair starting at `i` (tokens[i] must be `open`).
/// Returns the index one past the matching closer, or tokens.size().
size_t SkipBalanced(const std::vector<Token>& tokens, size_t i,
                    const char* open, const char* close) {
  size_t depth = 0;
  for (; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], open)) {
      ++depth;
    } else if (IsPunct(tokens[i], close)) {
      if (--depth == 0) return i + 1;
    }
  }
  return tokens.size();
}

/// Path scoping. Paths are repo-relative with forward slashes.
bool IsUnderUtil(const std::string& path) {
  return path.rfind("src/util/", 0) == 0;
}
bool IsLibraryCode(const std::string& path) {
  return path.rfind("src/", 0) == 0;
}

class Linter {
 public:
  Linter(const std::string& path, const FunctionRegistry& registry,
         const std::vector<Token>& tokens, const SuppressionMap& suppressions)
      : path_(path),
        registry_(registry),
        tokens_(tokens),
        suppressions_(suppressions) {}

  std::vector<Diagnostic> Run() {
    CheckDiscardedStatus();
    CheckNondeterminism();
    CheckNakedNew();
    CheckCatchAll();
    CheckUnsynchronizedSharedWrite();
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return std::tie(a.line, a.col, a.rule) <
                       std::tie(b.line, b.col, b.rule);
              });
    return std::move(diags_);
  }

 private:
  void Report(const Token& at, const std::string& rule, std::string message) {
    auto it = suppressions_.find(at.line);
    if (it != suppressions_.end() &&
        (it->second.count("*") > 0 || it->second.count(rule) > 0)) {
      return;
    }
    diags_.push_back(Diagnostic{path_, at.line, at.col, rule,
                                std::move(message)});
  }

  // --- asqp-discarded-status -----------------------------------------------
  // A statement of the form `chain.of.Calls(args);` whose final callee is a
  // known Status/Result-returning function discards the result. Calls whose
  // statement begins with an ASQP_* macro (ASQP_RETURN_NOT_OK, ...) are the
  // sanctioned consumption points and are skipped.
  void CheckDiscardedStatus() {
    bool at_statement_start = true;
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (at_statement_start && t.type == TokenType::kIdent) {
        const size_t matched = MatchDiscardedCall(i);
        if (matched > 0) {
          i = matched - 1;  // resume at the ';'
          at_statement_start = true;
          continue;
        }
      }
      at_statement_start =
          IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}") ||
          IsIdent(t, "else") || IsIdent(t, "do") || IsIdent(t, "try");
    }
  }

  /// Try to match `ident (:: ident | . ident | -> ident)* ( ... ) ;` at
  /// token `i`. On a match whose callee is registered (and whose leading
  /// identifier is not an ASQP_* macro), report and return the index of the
  /// trailing ';'. Returns 0 when the shape does not match or is benign.
  size_t MatchDiscardedCall(size_t i) {
    const std::string& head = tokens_[i].text;
    size_t callee = i;
    size_t j = i + 1;
    while (j + 1 < tokens_.size() &&
           (IsPunct(tokens_[j], "::") || IsPunct(tokens_[j], ".") ||
            IsPunct(tokens_[j], "->")) &&
           tokens_[j + 1].type == TokenType::kIdent) {
      callee = j + 1;
      j += 2;
    }
    if (j >= tokens_.size() || !IsPunct(tokens_[j], "(")) return 0;
    const size_t after = SkipBalanced(tokens_, j, "(", ")");
    if (after >= tokens_.size() || !IsPunct(tokens_[after], ";")) return 0;
    if (head.rfind("ASQP_", 0) == 0) return 0;
    const std::string& name = tokens_[callee].text;
    if (registry_.status_returning.count(name) == 0) return 0;
    Report(tokens_[callee], "asqp-discarded-status",
           "result of Status/Result-returning call '" + name +
               "' is discarded; consume it, ASQP_RETURN_NOT_OK it, or "
               "cast to void with a comment");
    return after;
  }

  // --- asqp-nondeterminism -------------------------------------------------
  void CheckNondeterminism() {
    static const std::unordered_set<std::string> kBannedEverywhere = {
        "rand",         "srand",          "drand48",
        "lrand48",      "random_device",  "default_random_engine",
        "random_shuffle"};
    static const std::unordered_set<std::string> kWallClock = {
        "system_clock", "gettimeofday", "clock_gettime",
        "localtime",    "gmtime",       "mktime"};
    const bool library = IsLibraryCode(path_) && !IsUnderUtil(path_);
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.type != TokenType::kIdent) continue;
      if (kBannedEverywhere.count(t.text) > 0) {
        Report(t, "asqp-nondeterminism",
               "'" + t.text +
                   "' is non-deterministic; use util::Rng with an explicit "
                   "seed");
        continue;
      }
      if (t.text == "mt19937" || t.text == "mt19937_64") {
        CheckMt19937(i);
        continue;
      }
      if (library && kWallClock.count(t.text) > 0) {
        Report(t, "asqp-nondeterminism",
               "wall-clock read ('" + t.text +
                   "') in library code; use util::Stopwatch / util::Deadline "
                   "(steady_clock) or accept a Deadline parameter");
        continue;
      }
      if (library && t.text == "time" && i > 0 &&
          IsPunct(tokens_[i - 1], "::") && IsPunct(tokens_[i + 1], "(")) {
        Report(t, "asqp-nondeterminism",
               "wall-clock read ('time') in library code");
      }
    }
  }

  /// `std::mt19937 gen;` / `mt19937()` / `mt19937{}` are unseeded (the
  /// default seed hides reproducibility bugs); a constructor argument makes
  /// it explicit and is allowed (though util::Rng is preferred).
  void CheckMt19937(size_t i) {
    size_t j = i + 1;
    if (j < tokens_.size() && tokens_[j].type == TokenType::kIdent) ++j;
    if (j >= tokens_.size()) return;
    const bool unseeded =
        IsPunct(tokens_[j], ";") ||
        (IsPunct(tokens_[j], "(") && j + 1 < tokens_.size() &&
         IsPunct(tokens_[j + 1], ")")) ||
        (IsPunct(tokens_[j], "{") && j + 1 < tokens_.size() &&
         IsPunct(tokens_[j + 1], "}"));
    if (unseeded) {
      Report(tokens_[i], "asqp-nondeterminism",
             "unseeded '" + tokens_[i].text +
                 "'; pass an explicit seed (or use util::Rng)");
    }
  }

  // --- asqp-naked-new ------------------------------------------------------
  void CheckNakedNew() {
    if (IsUnderUtil(path_)) return;
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.type != TokenType::kIdent) continue;
      if (t.text != "new" && t.text != "delete") continue;
      // `= delete;` (deleted function) and `operator new/delete` are
      // declarations, not allocations.
      if (i > 0 && IsIdent(tokens_[i - 1], "operator")) continue;
      if (t.text == "delete" && i > 0 && IsPunct(tokens_[i - 1], "=") &&
          (IsPunct(tokens_[i + 1], ";") || IsPunct(tokens_[i + 1], ","))) {
        continue;
      }
      Report(t, "asqp-naked-new",
             "naked '" + t.text +
                 "' outside src/util; use std::make_unique / make_shared or "
                 "a container");
    }
  }

  // --- asqp-catch-all ------------------------------------------------------
  void CheckCatchAll() {
    for (size_t i = 0; i + 3 < tokens_.size(); ++i) {
      if (!IsIdent(tokens_[i], "catch")) continue;
      if (!IsPunct(tokens_[i + 1], "(") || !IsPunct(tokens_[i + 2], "...") ||
          !IsPunct(tokens_[i + 3], ")")) {
        continue;
      }
      size_t body = i + 4;
      if (body >= tokens_.size() || !IsPunct(tokens_[body], "{")) continue;
      const size_t end = SkipBalanced(tokens_, body, "{", "}");
      bool converts = false;
      for (size_t k = body + 1; k + 1 < end; ++k) {
        const Token& b = tokens_[k];
        if (b.type != TokenType::kIdent) continue;
        if (b.text == "throw" || b.text == "rethrow_exception" ||
            b.text == "current_exception" || b.text == "exception_ptr" ||
            b.text == "abort" || b.text == "terminate" ||
            b.text.rfind("ASQP_", 0) == 0 ||
            b.text.find("Status") != std::string::npos ||
            b.text.find("Error") != std::string::npos) {
          converts = true;
          break;
        }
      }
      if (!converts) {
        Report(tokens_[i], "asqp-catch-all",
               "catch (...) swallows the exception; rethrow, convert to a "
               "Status, or capture with std::current_exception");
      }
      i = end > i ? end - 1 : i;
    }
  }

  // --- asqp-unsynchronized-shared-write ------------------------------------
  // A lambda passed to ParallelFor / ParallelForChunked /
  // ParallelReduceOrdered runs concurrently on pool threads. A local
  // captured by reference and mutated inside the lambda body — direct or
  // compound assignment, ++/--, a member assignment, or a mutating
  // container method — is a data race unless the body synchronizes.
  // Writes through a subscript (`parts[chunk] = ...`, the sanctioned
  // per-chunk-slot pattern), atomic member calls, and bodies that mention
  // a mutex/atomic are not flagged.
  void CheckUnsynchronizedSharedWrite() {
    static const std::unordered_set<std::string> kParallelEntry = {
        "ParallelFor", "ParallelForChunked", "ParallelReduceOrdered"};
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i].type != TokenType::kIdent ||
          kParallelEntry.count(tokens_[i].text) == 0) {
        continue;
      }
      size_t j = i + 1;
      if (IsPunct(tokens_[j], "<")) {
        // Explicit template arguments (ParallelReduceOrdered<Local>).
        size_t depth = 0;
        for (; j < tokens_.size(); ++j) {
          if (IsPunct(tokens_[j], "<")) ++depth;
          if (IsPunct(tokens_[j], ">") && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      if (j >= tokens_.size() || !IsPunct(tokens_[j], "(")) continue;
      const size_t call_end = SkipBalanced(tokens_, j, "(", ")");
      for (size_t k = j + 1; k < call_end; ++k) {
        if (!IsPunct(tokens_[k], "[")) continue;
        const size_t lambda_end =
            CheckParallelLambda(k, call_end, tokens_[i].text);
        if (lambda_end == 0) continue;
        k = lambda_end - 1;
      }
      i = call_end - 1;
    }
  }

  /// Analyze one lambda whose capture list opens at `open` inside a
  /// parallel-entry call ending at `call_end`. Returns the index one past
  /// the lambda body, or 0 if no lambda shape was found.
  size_t CheckParallelLambda(size_t open, size_t call_end,
                             const std::string& entry) {
    const size_t cap_end = SkipBalanced(tokens_, open, "[", "]");
    if (cap_end >= call_end) return 0;
    bool by_ref_default = false;
    std::unordered_set<std::string> by_ref;
    for (size_t q = open + 1; q + 1 < cap_end; ++q) {
      if (!IsPunct(tokens_[q], "&")) continue;
      if (tokens_[q + 1].type == TokenType::kIdent) {
        by_ref.insert(tokens_[q + 1].text);
      } else {
        by_ref_default = true;  // bare [&]
      }
    }
    if (open + 2 == cap_end && IsPunct(tokens_[open + 1], "&")) {
      by_ref_default = true;
    }

    // The lambda's parameters and body-local declarations are private per
    // invocation — never shared.
    std::unordered_set<std::string> locals;
    size_t p = cap_end;
    if (p < call_end && IsPunct(tokens_[p], "(")) {
      const size_t params_end = SkipBalanced(tokens_, p, "(", ")");
      for (size_t q = p + 1; q + 1 < params_end; ++q) {
        if (tokens_[q].type == TokenType::kIdent &&
            (IsPunct(tokens_[q + 1], ",") || q + 1 == params_end - 1)) {
          locals.insert(tokens_[q].text);
        }
      }
      p = params_end;
    }
    while (p < call_end && !IsPunct(tokens_[p], "{")) ++p;
    if (p >= call_end) return 0;
    const size_t body_end = SkipBalanced(tokens_, p, "{", "}");

    static const std::unordered_set<std::string> kSyncTokens = {
        "mutex", "lock_guard", "unique_lock", "scoped_lock",
        "Mutex", "MutexLock",  "shared_mutex"};
    static const std::unordered_set<std::string> kAtomicMethods = {
        "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "fetch_xor",
        "store",     "exchange",  "compare_exchange_weak",
        "compare_exchange_strong"};
    static const std::unordered_set<std::string> kMutatingMethods = {
        "push_back", "pop_back", "insert", "emplace", "emplace_back",
        "clear",     "resize",   "erase",  "append",  "assign"};
    static const std::unordered_set<std::string> kDeclKeywords = {
        "return", "if",    "while", "for",   "else",  "do",
        "switch", "case",  "new",   "delete", "throw", "goto",
        "break",  "continue", "sizeof", "co_return", "co_await"};

    // Pass 1: bail if the body synchronizes; collect body-local
    // declarations (`Type name`, `auto name`, `Type* name`, `Type& name`).
    for (size_t q = p + 1; q + 1 < body_end; ++q) {
      const Token& t = tokens_[q];
      if (t.type != TokenType::kIdent) continue;
      if (kSyncTokens.count(t.text) > 0) return body_end;
      const Token& prev = tokens_[q - 1];
      const bool after_type_name = prev.type == TokenType::kIdent &&
                                   kDeclKeywords.count(prev.text) == 0;
      const bool after_ptr_ref =
          (IsPunct(prev, "*") || IsPunct(prev, "&")) && q >= 2 &&
          tokens_[q - 2].type == TokenType::kIdent &&
          kDeclKeywords.count(tokens_[q - 2].text) == 0;
      if (after_type_name || after_ptr_ref) locals.insert(t.text);
    }

    // Pass 2: flag unsynchronized writes to by-ref captures.
    std::unordered_set<std::string> reported;
    for (size_t q = p + 1; q + 1 < body_end; ++q) {
      const Token& t = tokens_[q];
      if (t.type != TokenType::kIdent) continue;
      // A member name (`x.member`, `p->field`) is judged through its base
      // identifier, not on its own.
      if (IsPunct(tokens_[q - 1], ".") || IsPunct(tokens_[q - 1], "->")) {
        continue;
      }
      if (locals.count(t.text) > 0 || reported.count(t.text) > 0) continue;
      if (!by_ref_default && by_ref.count(t.text) == 0) continue;
      const Token& next = tokens_[q + 1];
      if (IsPunct(next, "[")) continue;  // per-chunk slot write
      const Token* n2 = q + 2 < body_end ? &tokens_[q + 2] : nullptr;
      const Token* n3 = q + 3 < body_end ? &tokens_[q + 3] : nullptr;
      bool mutated = false;
      if (IsPunct(next, "=") && (n2 == nullptr || !IsPunct(*n2, "=")) &&
          !IsPunct(tokens_[q - 1], "=") && !IsPunct(tokens_[q - 1], "!") &&
          !IsPunct(tokens_[q - 1], "<") && !IsPunct(tokens_[q - 1], ">")) {
        mutated = true;  // x = ...
      } else if (next.type == TokenType::kPunct && next.text.size() == 1 &&
                 std::string("+-*/%|^&").find(next.text[0]) !=
                     std::string::npos &&
                 n2 != nullptr && IsPunct(*n2, "=")) {
        mutated = true;  // x += ...
      } else if ((IsPunct(next, "+") && n2 != nullptr && IsPunct(*n2, "+")) ||
                 (IsPunct(next, "-") && n2 != nullptr && IsPunct(*n2, "-")) ||
                 (q >= 2 && IsPunct(tokens_[q - 1], "+") &&
                  IsPunct(tokens_[q - 2], "+")) ||
                 (q >= 2 && IsPunct(tokens_[q - 1], "-") &&
                  IsPunct(tokens_[q - 2], "-"))) {
        mutated = true;  // x++ / ++x
      } else if ((IsPunct(next, ".") || IsPunct(next, "->")) &&
                 n2 != nullptr && n2->type == TokenType::kIdent &&
                 n3 != nullptr) {
        if (IsPunct(*n3, "(")) {
          mutated = kMutatingMethods.count(n2->text) > 0 &&
                    kAtomicMethods.count(n2->text) == 0;
        } else if (IsPunct(*n3, "=") &&
                   (q + 4 >= body_end || !IsPunct(tokens_[q + 4], "="))) {
          mutated = true;  // x.member = ...
        }
      }
      if (!mutated) continue;
      reported.insert(t.text);
      Report(t, "asqp-unsynchronized-shared-write",
             "'" + t.text + "' is captured by reference and mutated inside "
             "a " + entry + " lambda without synchronization; write into a "
             "per-chunk slot, use an atomic, or guard it with a mutex");
    }
    return body_end;
  }

  const std::string& path_;
  const FunctionRegistry& registry_;
  const std::vector<Token>& tokens_;
  const SuppressionMap& suppressions_;
  std::vector<Diagnostic> diags_;
};

std::vector<std::filesystem::path> CollectSourceFiles(
    const std::string& root) {
  static const char* kDirs[] = {"src", "tests", "bench", "examples", "tools"};
  std::vector<std::filesystem::path> files;
  for (const char* dir : kDirs) {
    const std::filesystem::path base = std::filesystem::path(root) / dir;
    std::error_code ec;
    if (!std::filesystem::is_directory(base, ec)) continue;
    for (auto it = std::filesystem::recursive_directory_iterator(base, ec);
         it != std::filesystem::recursive_directory_iterator();
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".cc" || ext == ".h") files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFileOrEmpty(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream ss;
  ss << file << ":" << line << ":" << col << ": error: [" << rule << "] "
     << message;
  return ss.str();
}

void CollectStatusFunctions(const std::string& source,
                            FunctionRegistry* registry) {
  std::vector<Token> tokens;
  SuppressionMap suppressions;
  Scanner(source).Run(&tokens, &suppressions);
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].type != TokenType::kIdent) continue;
    size_t j = 0;
    if (tokens[i].text == "Status") {
      j = i + 1;
    } else if (tokens[i].text == "Result" && IsPunct(tokens[i + 1], "<")) {
      // Skip the balanced template argument list. `>>` closers appear as
      // two '>' tokens, so plain depth counting is enough.
      size_t depth = 0;
      size_t k = i + 1;
      for (; k < tokens.size(); ++k) {
        if (IsPunct(tokens[k], "<")) ++depth;
        if (IsPunct(tokens[k], ">") && --depth == 0) break;
      }
      j = k + 1;
    } else {
      continue;
    }
    // The declared name may be namespace- or class-qualified
    // (`Status io::Sync(...)`, `Status Table::AppendRow(...)`); register
    // the final identifier of the chain.
    while (j + 2 < tokens.size() && tokens[j].type == TokenType::kIdent &&
           IsPunct(tokens[j + 1], "::") &&
           tokens[j + 2].type == TokenType::kIdent) {
      j += 2;
    }
    if (j + 1 < tokens.size() && tokens[j].type == TokenType::kIdent &&
        IsPunct(tokens[j + 1], "(")) {
      registry->status_returning.insert(tokens[j].text);
    }
  }
}

std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& source,
                                   const FunctionRegistry& registry) {
  std::vector<Token> tokens;
  SuppressionMap suppressions;
  Scanner(source).Run(&tokens, &suppressions);
  return Linter(path, registry, tokens, suppressions).Run();
}

size_t LintTree(const std::string& root, std::vector<Diagnostic>* out) {
  const std::vector<std::filesystem::path> files = CollectSourceFiles(root);
  FunctionRegistry registry;
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const auto& file : files) {
    std::string rel =
        std::filesystem::relative(file, root).generic_string();
    sources.emplace_back(std::move(rel), ReadFileOrEmpty(file));
    CollectStatusFunctions(sources.back().second, &registry);
  }
  size_t violations = 0;
  for (const auto& [rel, source] : sources) {
    for (const Diagnostic& d : LintSource(rel, source, registry)) {
      if (out != nullptr) out->push_back(d);
      ++violations;
    }
  }
  return violations;
}

}  // namespace lint
}  // namespace asqp
