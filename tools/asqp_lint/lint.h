// asqp-lint: an in-tree static analyzer enforcing repo invariants that the
// compiler cannot (or that we want diagnosed even in code paths a build
// config does not compile). v2 is symbol- and scope-aware: a first pass
// over every file builds an AnalysisIndex (Status-returning functions,
// ASQP_GUARDED_BY / ASQP_EXCLUDES declarations, the fault-point registry),
// and the checking pass walks a brace/scope tracker over the token stream
// so rules can reason about class membership, function bodies, locals, and
// which mutexes are held. Still dependency-free — no libclang; the scanner
// follows the skeleton of src/sql/lexer.cc (one forward pass, flat token
// vector, line:col for diagnostics).
//
// Rules (all diagnostics print `file:line:col: error: [asqp-<rule>] ...`):
//   asqp-discarded-status   a statement-level call to a function returning
//                           Status / Result<T> whose value is discarded,
//                           outside an ASQP_* macro invocation; bare calls
//                           to a void function declared in the same file
//                           are exempt (name collisions across TUs)
//   asqp-nondeterminism     banned randomness (rand, srand, random_device,
//                           default_random_engine, unseeded mt19937) plus
//                           wall-clock reads in library code (src/ outside
//                           src/util)
//   asqp-naked-new          `new` / `delete` outside src/util
//   asqp-catch-all          `catch (...)` whose handler neither rethrows
//                           nor converts to a Status
//   asqp-unsynchronized-shared-write
//                           by-ref capture mutated in a ParallelFor /
//                           ParallelForChunked / ParallelReduceOrdered
//                           lambda without synchronization; calls whose
//                           literal count is 0 or 1 run only on the caller
//                           thread and are exempt
//   asqp-guard-violation    read/write of an ASQP_GUARDED_BY(mu) field
//                           outside a lock_guard / unique_lock /
//                           scoped_lock / shared_lock scope on `mu`, or a
//                           call to a same-class ASQP_EXCLUDES(mu) method
//                           while holding `mu` (see src/util/annotations.h)
//   asqp-missing-guard      annotation completeness (src/ only): a field
//                           written under a held mutex with no
//                           ASQP_GUARDED_BY, or a mutex member whose class
//                           declares no protocol for it at all
//   asqp-unpolled-loop      a loop in src/exec/ or src/aqp/ whose body
//                           exceeds kUnpolledLoopStatementThreshold
//                           statements and never polls an ExecContext /
//                           DeadlineTicker (Tick / Check / CheckRows /
//                           Expired) — the invariant behind "clients never
//                           see a raw timeout"
//   asqp-unregistered-fault-point
//                           ASQP_FAULT_POINT("...") literal absent from
//                           src/util/fault_points.h
//
// Suppression: `// NOLINT` or `// NOLINT(asqp-<rule>[, ...])` on the
// diagnosed line, or `// NOLINTNEXTLINE(...)` on the line above. Tree-wide
// findings that predate a rule live in tools/asqp_lint/baseline.txt:
// baselined findings are reported as grandfathered and do not fail the
// run; anything new does.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace asqp {
namespace lint {

struct Diagnostic {
  std::string file;
  size_t line = 0;  // 1-based
  size_t col = 0;   // 1-based
  std::string rule;  // "asqp-discarded-status", ...
  std::string message;

  std::string ToString() const;
};

/// Loops in src/exec/ and src/aqp/ with more statements than this must
/// poll a deadline (or carry a justified NOLINT).
inline constexpr size_t kUnpolledLoopStatementThreshold = 8;

/// Names of free functions / methods declared anywhere in the tree with a
/// Status or Result<T> return type. Built by a first pass over every file
/// so the discard rule needs no hand-maintained list.
struct FunctionRegistry {
  std::unordered_set<std::string> status_returning;
};

/// Lock-discipline declarations harvested from ASQP_GUARDED_BY /
/// ASQP_EXCLUDES annotations (see src/util/annotations.h). Keyed by the
/// unqualified class name; mutexes are stored as the final identifier of
/// the annotation argument (`shard.mu` -> `mu`).
struct GuardIndex {
  /// class -> field -> guarding mutex (annotated fields only).
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::string>>
      guarded_fields;
  /// class -> method -> mutex that must not be held at the call.
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::string>>
      excluded_methods;
  /// class -> every data-member name (annotated or not), for the
  /// completeness direction of the guard rules.
  std::unordered_map<std::string, std::unordered_set<std::string>> fields;
  /// Mutex-typed members (std::mutex / std::shared_mutex) of src/
  /// classes; each must be referenced by at least one annotation in its
  /// class (or a nested class), else asqp-missing-guard fires.
  struct MutexDecl {
    std::string cls;
    std::string name;
    std::string file;
    size_t line = 0;
    size_t col = 0;
  };
  std::vector<MutexDecl> mutex_decls;
  /// nested class -> lexically enclosing classes ("" at namespace scope;
  /// a set because unqualified names like `Stats` recur across classes).
  /// `struct Outer::Inner { ... }` records Inner -> Outer as well.
  std::unordered_map<std::string, std::unordered_set<std::string>> parents;
};

/// Global pass-1 index shared by every file's checking pass.
struct AnalysisIndex {
  FunctionRegistry functions;
  GuardIndex guards;
  /// Registered fault-point literals (from src/util/fault_points.h).
  std::unordered_set<std::string> fault_points;
  /// True once a file ending in util/fault_points.h has been indexed;
  /// the fault-point rule only fires when the registry was seen (so
  /// linting a lone file does not flag every ASQP_FAULT_POINT in it).
  bool has_fault_registry = false;
};

/// Index one file: Status/Result-returning declarations, annotations,
/// fields and mutex members, and (for util/fault_points.h) the registry.
void BuildIndex(const std::string& path, const std::string& source,
                AnalysisIndex* index);

/// Lint one translation unit against the global index. `path` is used
/// both for diagnostics and for path-scoped rules; pass repo-relative
/// paths with forward slashes.
std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& source,
                                   const AnalysisIndex& index);

/// The set of files to lint, repo-relative. Derived from the compile
/// commands database when `compile_commands` names a readable file:
/// every translation unit under `root` plus the transitive closure of
/// their in-repo `#include "..."` headers, so new subsystems are covered
/// the moment they are added to the build. Falls back to walking
/// src/ tests/ bench/ examples/ tools/ when the database is absent.
std::vector<std::string> CollectLintFiles(const std::string& root,
                                          const std::string& compile_commands);

/// The cross-file half of asqp-missing-guard: every src/ mutex member in
/// the index must be referenced by at least one ASQP_GUARDED_BY /
/// ASQP_EXCLUDES annotation in its class (or a nested class). Run by
/// LintTree after indexing; exposed so tests can drive it on snippets.
void CheckMutexCoverage(const AnalysisIndex& index,
                        std::vector<Diagnostic>* out);

/// Build the index over `root`, lint every file, and append diagnostics
/// to `out`. Returns the number of diagnostics. `compile_commands` may be
/// empty (directory-walk fallback).
size_t LintTree(const std::string& root, const std::string& compile_commands,
                std::vector<Diagnostic>* out);

/// Baseline handling: a checked-in multiset of grandfathered findings.
/// Keys deliberately exclude line/col so unrelated edits do not invalidate
/// the baseline; multiplicity is preserved (N baselined findings of one
/// key absorb at most N current findings).
struct Baseline {
  std::unordered_map<std::string, size_t> entries;
};

std::string BaselineKey(const Diagnostic& d);

/// Load `path` (one `file<TAB>rule<TAB>message` per line, '#' comments).
/// Returns false when the file cannot be read.
bool LoadBaseline(const std::string& path, Baseline* baseline);

/// Serialize diagnostics in baseline format (sorted, deduplicated into
/// counted entries by repetition).
std::string SerializeBaseline(const std::vector<Diagnostic>& diags);

/// Split `diags` into findings absorbed by the baseline and new ones.
void PartitionAgainstBaseline(const std::vector<Diagnostic>& diags,
                              const Baseline& baseline,
                              std::vector<Diagnostic>* grandfathered,
                              std::vector<Diagnostic>* fresh);

/// JSON report for CI artifacts: {"diagnostics":[...],"total":N,
/// "new":M,"grandfathered":K}. `fresh`/`grandfathered` as produced by
/// PartitionAgainstBaseline.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& fresh,
                              const std::vector<Diagnostic>& grandfathered);

}  // namespace lint
}  // namespace asqp
