// asqp-lint: an in-tree token-level static analyzer enforcing repo
// invariants that the compiler cannot (or that we want diagnosed even in
// code paths a build config does not compile). The scanner follows the
// skeleton of src/sql/lexer.cc — a single forward pass producing a flat
// token vector — extended with C++ lexical details (comments, raw strings,
// preprocessor lines) and line:col tracking for diagnostics.
//
// Rules (all diagnostics print `file:line:col: error: [asqp-<rule>] ...`):
//   asqp-discarded-status   a statement-level call to a function returning
//                           Status / Result<T> whose value is discarded,
//                           outside an ASQP_* macro invocation
//   asqp-nondeterminism     banned randomness (rand, srand, random_device,
//                           default_random_engine, unseeded mt19937) plus
//                           wall-clock reads in library code (src/ outside
//                           src/util)
//   asqp-naked-new          `new` / `delete` outside src/util (the library
//                           owns memory through containers and smart
//                           pointers; only util's leaky singletons and
//                           pimpl constructors may allocate directly)
//   asqp-catch-all          `catch (...)` whose handler neither rethrows
//                           nor converts (no throw / rethrow_exception /
//                           current_exception / Status construction)
//
// Suppression: `// NOLINT` or `// NOLINT(asqp-<rule>[, ...])` on the
// diagnosed line, or `// NOLINTNEXTLINE(...)` on the line above.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

namespace asqp {
namespace lint {

struct Diagnostic {
  std::string file;
  size_t line = 0;  // 1-based
  size_t col = 0;   // 1-based
  std::string rule;  // "asqp-discarded-status", ...
  std::string message;

  std::string ToString() const;
};

/// Names of free functions / methods declared anywhere in the tree with a
/// Status or Result<T> return type. Built by a first pass over every file
/// so the discard rule needs no hand-maintained list.
struct FunctionRegistry {
  std::unordered_set<std::string> status_returning;
};

/// Scan `source` for Status/Result-returning declarations and add their
/// names to `registry`.
void CollectStatusFunctions(const std::string& source,
                            FunctionRegistry* registry);

/// Lint one translation unit. `path` is used both for diagnostics and for
/// path-scoped rules (naked-new exemption under src/util, wall-clock ban
/// limited to library code). Paths are matched on their repo-relative
/// form, so pass paths relative to the repo root.
std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& source,
                                   const FunctionRegistry& registry);

/// Walk `root`'s source directories (src/ tests/ bench/ examples/ tools/),
/// build the registry, lint every .cc/.h file, and print diagnostics to
/// stdout. Returns the number of violations (0 = clean tree).
size_t LintTree(const std::string& root, std::vector<Diagnostic>* out);

}  // namespace lint
}  // namespace asqp
