// asqp-lint CLI. `asqp_lint --root <repo>` lints every translation unit
// (and their in-repo headers) and exits non-zero on any finding not
// absorbed by the baseline; see lint.h for the rule set and DESIGN.md §5
// for the rationale.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "asqp_lint/lint.h"

namespace {

int Usage() {
  std::cerr
      << "usage: asqp_lint [--root <dir>] [options] [file...]\n"
      << "  --root <dir>             repository root (default: .)\n"
      << "  --compile-commands <f>   derive the file list from this compile\n"
      << "                           database (+ in-repo include closure);\n"
      << "                           falls back to a directory walk\n"
      << "  --baseline <f>           grandfathered findings; only findings\n"
      << "                           not in the baseline fail the run\n"
      << "  --write-baseline <f>     write current findings as the baseline\n"
      << "                           and exit 0\n"
      << "  --json <f>               write a JSON diagnostics report\n"
      << "  file...                  lint only these files (index built\n"
      << "                           from them; baseline/json still apply)\n";
  return 2;
}

bool WriteFileOrWarn(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "asqp-lint: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compile_commands;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string json_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const auto flag_value = [&](std::string* dst) {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    if (std::strcmp(argv[i], "--root") == 0) {
      if (!flag_value(&root)) return Usage();
    } else if (std::strcmp(argv[i], "--compile-commands") == 0) {
      if (!flag_value(&compile_commands)) return Usage();
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      if (!flag_value(&baseline_path)) return Usage();
    } else if (std::strcmp(argv[i], "--write-baseline") == 0) {
      if (!flag_value(&write_baseline_path)) return Usage();
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (!flag_value(&json_path)) return Usage();
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      return Usage();
    } else {
      files.emplace_back(argv[i]);
    }
  }

  std::vector<asqp::lint::Diagnostic> diags;
  if (files.empty()) {
    asqp::lint::LintTree(root, compile_commands, &diags);
  } else {
    asqp::lint::AnalysisIndex index;
    std::vector<std::pair<std::string, std::string>> sources;
    for (const std::string& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        std::cerr << "asqp-lint: cannot open " << file << "\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      sources.emplace_back(file, ss.str());
      asqp::lint::BuildIndex(file, sources.back().second, &index);
    }
    for (const auto& [path, source] : sources) {
      for (auto& d : asqp::lint::LintSource(path, source, index)) {
        diags.push_back(std::move(d));
      }
    }
    asqp::lint::CheckMutexCoverage(index, &diags);
  }

  if (!write_baseline_path.empty()) {
    if (!WriteFileOrWarn(write_baseline_path,
                         asqp::lint::SerializeBaseline(diags))) {
      return 2;
    }
    std::cerr << "asqp-lint: wrote " << diags.size() << " finding(s) to "
              << write_baseline_path << "\n";
    return 0;
  }

  asqp::lint::Baseline baseline;
  if (!baseline_path.empty() &&
      !asqp::lint::LoadBaseline(baseline_path, &baseline)) {
    std::cerr << "asqp-lint: cannot read baseline " << baseline_path << "\n";
    return 2;
  }
  std::vector<asqp::lint::Diagnostic> grandfathered;
  std::vector<asqp::lint::Diagnostic> fresh;
  asqp::lint::PartitionAgainstBaseline(diags, baseline, &grandfathered,
                                       &fresh);

  if (!json_path.empty() &&
      !WriteFileOrWarn(json_path,
                       asqp::lint::DiagnosticsToJson(fresh, grandfathered))) {
    return 2;
  }

  for (const auto& d : fresh) std::cout << d.ToString() << "\n";
  if (!grandfathered.empty()) {
    std::cerr << "asqp-lint: " << grandfathered.size()
              << " grandfathered finding(s) absorbed by the baseline\n";
  }
  if (!fresh.empty()) {
    std::cerr << "asqp-lint: " << fresh.size() << " violation(s)\n";
    return 1;
  }
  std::cerr << "asqp-lint: clean\n";
  return 0;
}
