// asqp-lint CLI. `asqp_lint --root <repo>` walks src/ tests/ bench/
// examples/ tools/ and exits non-zero when any invariant is violated; see
// lint.h for the rule set and DESIGN.md §5 for the rationale.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "asqp_lint/lint.h"

namespace {

int Usage() {
  std::cerr << "usage: asqp_lint [--root <dir>] [file...]\n"
            << "  --root <dir>  repository root to walk (default: .)\n"
            << "  file...       lint only these files (registry built from "
               "them)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      return Usage();
    } else {
      files.emplace_back(argv[i]);
    }
  }

  std::vector<asqp::lint::Diagnostic> diags;
  size_t violations = 0;
  if (files.empty()) {
    violations = asqp::lint::LintTree(root, &diags);
  } else {
    asqp::lint::FunctionRegistry registry;
    std::vector<std::pair<std::string, std::string>> sources;
    for (const std::string& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        std::cerr << "asqp-lint: cannot open " << file << "\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      sources.emplace_back(file, ss.str());
      asqp::lint::CollectStatusFunctions(sources.back().second, &registry);
    }
    for (const auto& [path, source] : sources) {
      for (auto& d : asqp::lint::LintSource(path, source, registry)) {
        diags.push_back(std::move(d));
        ++violations;
      }
    }
  }

  for (const auto& d : diags) std::cout << d.ToString() << "\n";
  if (violations > 0) {
    std::cerr << "asqp-lint: " << violations << " violation(s)\n";
    return 1;
  }
  std::cerr << "asqp-lint: clean\n";
  return 0;
}
