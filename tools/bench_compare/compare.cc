#include "bench_compare/compare.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

namespace asqp {
namespace benchcmp {

namespace {

/// Recursive-descent parser over the bench-JSON subset. Values we do not
/// care about (nested arrays, bools, null) are parsed and discarded so a
/// hand-annotated baseline still loads.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseTopLevel(std::vector<BenchEntry>* out) {
    SkipWhitespace();
    if (!Expect('[')) return false;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      BenchEntry entry;
      if (!ParseRecord(&entry)) return false;
      out->push_back(std::move(entry));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        SkipWhitespace();
        continue;
      }
      break;
    }
    return Expect(']');
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        if (c == '\n') ++line_;
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Fail(const std::string& what) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "line %zu: ", line_);
    *error_ = buf + what;
    return false;
  }

  bool Expect(char c) {
    SkipWhitespace();
    if (Peek() != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    SkipWhitespace();
    if (Peek() != '"') return Fail("expected string");
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            // The emitter only \u-escapes control characters; decode the
            // low byte and drop the (always-zero) high byte.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            *out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        if (c == '\n') ++line_;
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(double* out) {
    SkipWhitespace();
    const size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected number");
    *out = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseLiteral(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  /// Parse and discard any JSON value.
  bool SkipValue() {
    SkipWhitespace();
    const char c = Peek();
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (c == '{') {
      ++pos_;
      SkipWhitespace();
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        std::string key;
        if (!ParseString(&key) || !Expect(':') || !SkipValue()) return false;
        SkipWhitespace();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        return Expect('}');
      }
    }
    if (c == '[') {
      ++pos_;
      SkipWhitespace();
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        if (!SkipValue()) return false;
        SkipWhitespace();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        return Expect(']');
      }
    }
    if (c == 't') return ParseLiteral("true");
    if (c == 'f') return ParseLiteral("false");
    if (c == 'n') return ParseLiteral("null");
    double ignored;
    return ParseNumber(&ignored);
  }

  bool ParseParams(BenchEntry* entry) {
    if (!Expect('{')) return false;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      std::string value;
      if (!ParseString(&key) || !Expect(':') || !ParseString(&value)) {
        return false;
      }
      entry->params.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        SkipWhitespace();
        continue;
      }
      return Expect('}');
    }
  }

  bool ParseRecord(BenchEntry* entry) {
    if (!Expect('{')) return false;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key) || !Expect(':')) return false;
      if (key == "name") {
        if (!ParseString(&entry->name)) return false;
      } else if (key == "params") {
        SkipWhitespace();
        if (Peek() == '{') {
          if (!ParseParams(entry)) return false;
        } else if (!SkipValue()) {
          return false;
        }
      } else if (key == "wall_seconds") {
        if (!ParseNumber(&entry->wall_seconds)) return false;
      } else if (key == "rows_per_sec") {
        if (!ParseNumber(&entry->rows_per_sec)) return false;
      } else if (key == "score") {
        if (!ParseNumber(&entry->score)) return false;
      } else if (key == "error") {
        if (!ParseNumber(&entry->error)) return false;
      } else if (key == "p99_seconds") {
        if (!ParseNumber(&entry->p99_seconds)) return false;
      } else if (key == "degraded_ratio") {
        if (!ParseNumber(&entry->degraded_ratio)) return false;
      } else if (!SkipValue()) {  // forward compatibility: unknown keys
        return false;
      }
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        SkipWhitespace();
        continue;
      }
      return Expect('}');
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

std::string FmtSeconds(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6fs", v);
  return buf;
}

}  // namespace

bool ParseBenchJson(const std::string& text, std::vector<BenchEntry>* out,
                    std::string* error) {
  Parser parser(text, error);
  if (!parser.ParseTopLevel(out)) return false;
  std::set<std::string> seen;
  for (const BenchEntry& entry : *out) {
    if (entry.name.empty()) {
      *error = "record without a \"name\"";
      return false;
    }
    if (!seen.insert(entry.name).second) {
      *error = "duplicate benchmark name: " + entry.name;
      return false;
    }
  }
  return true;
}

CompareResult Compare(const std::vector<BenchEntry>& baseline,
                      const std::vector<BenchEntry>& current,
                      const CompareOptions& options) {
  CompareResult result;
  std::map<std::string, const BenchEntry*> current_by_name;
  for (const BenchEntry& entry : current) {
    current_by_name[entry.name] = &entry;
  }
  std::set<std::string> baseline_names;
  for (const BenchEntry& base : baseline) {
    baseline_names.insert(base.name);
    const auto it = current_by_name.find(base.name);
    if (it == current_by_name.end()) {
      result.missing.push_back(base.name);
      continue;
    }
    const BenchEntry& cur = *it->second;
    bool counted = false;
    if (base.wall_seconds >= options.min_wall_seconds) {
      counted = true;
      if (cur.wall_seconds > base.wall_seconds * (1.0 + options.tolerance)) {
        Regression regression;
        regression.name = base.name;
        regression.baseline_wall = base.wall_seconds;
        regression.current_wall = cur.wall_seconds;
        regression.ratio = cur.wall_seconds / base.wall_seconds;
        result.regressions.push_back(std::move(regression));
      }
    }
    // Overload fields are gated only when the baseline records them:
    // a baseline written before the fields existed parses them as 0 and
    // never fails a run that started emitting them.
    if (base.p99_seconds >= options.min_wall_seconds) {
      counted = true;
      if (cur.p99_seconds > base.p99_seconds * (1.0 + options.tolerance)) {
        Regression regression;
        regression.name = base.name;
        regression.metric = "p99_seconds";
        regression.baseline_wall = base.p99_seconds;
        regression.current_wall = cur.p99_seconds;
        regression.ratio = cur.p99_seconds / base.p99_seconds;
        result.regressions.push_back(std::move(regression));
      }
    }
    if (base.degraded_ratio > 0.0) {
      counted = true;
      if (cur.degraded_ratio >
          base.degraded_ratio + options.degraded_ratio_slack) {
        Regression regression;
        regression.name = base.name;
        regression.metric = "degraded_ratio";
        regression.baseline_wall = base.degraded_ratio;
        regression.current_wall = cur.degraded_ratio;
        regression.ratio = cur.degraded_ratio - base.degraded_ratio;
        result.regressions.push_back(std::move(regression));
      }
    }
    if (counted) {
      ++result.compared;
    } else {
      result.skipped.push_back(base.name);
    }
  }
  for (const BenchEntry& entry : current) {
    if (baseline_names.count(entry.name) == 0) {
      result.added.push_back(entry.name);
    }
  }
  return result;
}

std::string Report(const CompareResult& result,
                   const CompareOptions& options) {
  std::string out;
  char buf[256];
  for (const Regression& r : result.regressions) {
    if (r.metric == "degraded_ratio") {
      std::snprintf(buf, sizeof(buf),
                    "REGRESSION %s [degraded_ratio]: %.3f -> %.3f "
                    "(+%.3f, slack %.3f)\n",
                    r.name.c_str(), r.baseline_wall, r.current_wall, r.ratio,
                    options.degraded_ratio_slack);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "REGRESSION %s [%s]: %s -> %s (%.2fx, tolerance "
                    "%.0f%%)\n",
                    r.name.c_str(), r.metric.c_str(),
                    FmtSeconds(r.baseline_wall).c_str(),
                    FmtSeconds(r.current_wall).c_str(), r.ratio,
                    options.tolerance * 100.0);
    }
    out += buf;
  }
  for (const std::string& name : result.missing) {
    out += (options.fail_on_missing ? "MISSING " : "missing (stale baseline?) ");
    out += name + "\n";
  }
  for (const std::string& name : result.added) {
    out += "new (not in baseline) " + name + "\n";
  }
  for (const std::string& name : result.skipped) {
    out += "skipped (below min wall time) " + name + "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "%zu compared, %zu regression(s), %zu missing, %zu new, "
                "%zu skipped\n",
                result.compared, result.regressions.size(),
                result.missing.size(), result.added.size(),
                result.skipped.size());
  out += buf;
  return out;
}

}  // namespace benchcmp
}  // namespace asqp
