// bench_compare: CI gate over the machine-readable benchmark records
// emitted by bench/common/bench_json.h. Parses two JSON files (a
// checked-in baseline, e.g. bench/baselines/BENCH_micro.json, and the
// current run's output) and fails when any benchmark's wall time
// regressed past a relative tolerance.
//
// Like asqp_lint, this is dependency-free plain C++: the JSON parser
// below handles exactly the subset the emitter produces (an array of
// flat objects with string/number/object-of-string values) plus enough
// generality — nested values, bools, null, escapes — to not choke on
// hand-edited baselines.
//
// Comparison policy:
//   - matched by record "name"; a name may appear only once per file
//   - wall-time regression: current > baseline * (1 + tolerance) fails
//   - entries with baseline wall time below `min_wall_seconds` are
//     skipped (sub-100us timings are noise-dominated in CI)
//   - benchmarks only in the current run are reported as "new" and pass
//     (adding a benchmark must not require touching the baseline)
//   - benchmarks only in the baseline are reported as "missing" and
//     pass by default (removal means the baseline is stale, not that
//     performance regressed); CI can tighten with --fail-on-missing
//   - optional overload fields: p99_seconds is gated like wall time;
//     degraded_ratio fails when it grows more than an absolute slack
//     over the baseline. Both are gated only when the baseline entry
//     records them, so pre-existing baseline files keep passing
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace asqp {
namespace benchcmp {

/// One benchmark record, mirroring bench::BenchRecord's JSON schema.
/// p99_seconds / degraded_ratio are optional in the serialized form
/// (absent reads as 0), so baselines written before those fields existed
/// parse unchanged.
struct BenchEntry {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;
  double wall_seconds = 0.0;
  double rows_per_sec = 0.0;
  double score = 0.0;
  double error = 0.0;
  double p99_seconds = 0.0;
  double degraded_ratio = 0.0;
};

/// Parse a bench-JSON array. Returns false and sets *error (with a
/// line-ish position hint) on malformed input or duplicate names.
bool ParseBenchJson(const std::string& text, std::vector<BenchEntry>* out,
                    std::string* error);

struct CompareOptions {
  /// Allowed relative wall-time growth: current <= baseline * (1 + tol).
  /// Also applied to p99_seconds when the baseline entry records one.
  double tolerance = 0.25;
  /// Baseline entries faster than this are skipped as timer noise (per
  /// metric: a record's mean can be gated while its sub-noise p99 is not).
  double min_wall_seconds = 1e-4;
  /// Allowed absolute growth in degraded_ratio: current <= baseline +
  /// slack. Only enforced when the baseline entry records a nonzero
  /// ratio, so baselines written before the field existed never gate it.
  double degraded_ratio_slack = 0.10;
  /// Treat benchmarks present in the baseline but absent from the
  /// current run as failures.
  bool fail_on_missing = false;
};

struct Regression {
  std::string name;
  /// Which field regressed: "wall_seconds", "p99_seconds", or
  /// "degraded_ratio". One record can contribute several regressions.
  std::string metric = "wall_seconds";
  double baseline_wall = 0.0;
  double current_wall = 0.0;
  /// current / baseline (> 1 + tolerance by construction; for
  /// degraded_ratio, current - baseline > slack instead).
  double ratio = 0.0;
};

struct CompareResult {
  std::vector<Regression> regressions;
  std::vector<std::string> missing;  // in baseline, absent from current
  std::vector<std::string> added;    // in current, absent from baseline
  std::vector<std::string> skipped;  // under min_wall_seconds
  size_t compared = 0;

  bool ok(const CompareOptions& options) const {
    return regressions.empty() &&
           (!options.fail_on_missing || missing.empty());
  }
};

/// Compare current against baseline under `options`.
CompareResult Compare(const std::vector<BenchEntry>& baseline,
                      const std::vector<BenchEntry>& current,
                      const CompareOptions& options);

/// Human-readable multi-line report (one line per finding + a summary).
std::string Report(const CompareResult& result, const CompareOptions& options);

}  // namespace benchcmp
}  // namespace asqp
