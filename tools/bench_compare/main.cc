// CLI for the benchmark regression gate (see compare.h for policy).
//
//   bench_compare --baseline bench/baselines/BENCH_micro.json
//                 --current BENCH_micro.json
//                 [--tolerance 0.25] [--min-wall-seconds 1e-4]
//                 [--fail-on-missing]
//
// Exit codes: 0 = within tolerance, 1 = regression (or missing benchmark
// with --fail-on-missing), 2 = usage / unreadable / malformed input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_compare/compare.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline <json> --current <json> "
               "[--tolerance <frac>] [--min-wall-seconds <s>] "
               "[--fail-on-missing]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  asqp::benchcmp::CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (std::strcmp(arg, "--baseline") == 0 && has_next) {
      baseline_path = argv[++i];
    } else if (std::strcmp(arg, "--current") == 0 && has_next) {
      current_path = argv[++i];
    } else if (std::strcmp(arg, "--tolerance") == 0 && has_next) {
      options.tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--min-wall-seconds") == 0 && has_next) {
      options.min_wall_seconds = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--fail-on-missing") == 0) {
      options.fail_on_missing = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }
  if (baseline_path.empty() || current_path.empty()) return Usage(argv[0]);

  std::string baseline_text;
  std::string current_text;
  if (!ReadFile(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return 2;
  }
  if (!ReadFile(current_path, &current_text)) {
    std::fprintf(stderr, "cannot read current %s\n", current_path.c_str());
    return 2;
  }

  std::vector<asqp::benchcmp::BenchEntry> baseline;
  std::vector<asqp::benchcmp::BenchEntry> current;
  std::string error;
  if (!asqp::benchcmp::ParseBenchJson(baseline_text, &baseline, &error)) {
    std::fprintf(stderr, "%s: %s\n", baseline_path.c_str(), error.c_str());
    return 2;
  }
  if (!asqp::benchcmp::ParseBenchJson(current_text, &current, &error)) {
    std::fprintf(stderr, "%s: %s\n", current_path.c_str(), error.c_str());
    return 2;
  }

  const asqp::benchcmp::CompareResult result =
      asqp::benchcmp::Compare(baseline, current, options);
  std::fputs(asqp::benchcmp::Report(result, options).c_str(), stdout);
  return result.ok(options) ? 0 : 1;
}
