// CLI for the benchmark regression gate (see compare.h for policy).
//
//   bench_compare --baseline bench/baselines/BENCH_micro.json
//                 --current BENCH_micro.json
//                 [--tolerance 0.25] [--min-wall-seconds 1e-4]
//                 [--degraded-slack 0.10] [--fail-on-missing]
//
// --baseline and --current are repeatable: CI gates several bench
// binaries (micro substrates, serve throughput) in one invocation by
// merging every file on each side. A benchmark name may appear only once
// per side across all of its files.
//
// Exit codes: 0 = within tolerance, 1 = regression (or missing benchmark
// with --fail-on-missing), 2 = usage / unreadable / malformed input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_compare/compare.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline <json>... --current <json>... "
               "[--tolerance <frac>] [--min-wall-seconds <s>] "
               "[--degraded-slack <frac>] [--fail-on-missing]\n",
               argv0);
  return 2;
}

/// Read, parse, and merge every file in `paths` (side = "baseline" /
/// "current" for diagnostics). Returns false after reporting on stderr.
bool LoadSide(const std::vector<std::string>& paths, const char* side,
              std::vector<asqp::benchcmp::BenchEntry>* out) {
  std::unordered_set<std::string> seen;
  for (const std::string& path : paths) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "cannot read %s %s\n", side, path.c_str());
      return false;
    }
    std::vector<asqp::benchcmp::BenchEntry> entries;
    std::string error;
    if (!asqp::benchcmp::ParseBenchJson(text, &entries, &error)) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
      return false;
    }
    for (asqp::benchcmp::BenchEntry& entry : entries) {
      if (!seen.insert(entry.name).second) {
        std::fprintf(stderr,
                     "%s: duplicate benchmark name '%s' across %s files\n",
                     path.c_str(), entry.name.c_str(), side);
        return false;
      }
      out->push_back(std::move(entry));
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> baseline_paths;
  std::vector<std::string> current_paths;
  asqp::benchcmp::CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (std::strcmp(arg, "--baseline") == 0 && has_next) {
      baseline_paths.push_back(argv[++i]);
    } else if (std::strcmp(arg, "--current") == 0 && has_next) {
      current_paths.push_back(argv[++i]);
    } else if (std::strcmp(arg, "--tolerance") == 0 && has_next) {
      options.tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--min-wall-seconds") == 0 && has_next) {
      options.min_wall_seconds = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--degraded-slack") == 0 && has_next) {
      options.degraded_ratio_slack = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(arg, "--fail-on-missing") == 0) {
      options.fail_on_missing = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }
  if (baseline_paths.empty() || current_paths.empty()) return Usage(argv[0]);

  std::vector<asqp::benchcmp::BenchEntry> baseline;
  std::vector<asqp::benchcmp::BenchEntry> current;
  if (!LoadSide(baseline_paths, "baseline", &baseline)) return 2;
  if (!LoadSide(current_paths, "current", &current)) return 2;

  const asqp::benchcmp::CompareResult result =
      asqp::benchcmp::Compare(baseline, current, options);
  std::fputs(asqp::benchcmp::Report(result, options).c_str(), stdout);
  return result.ok(options) ? 0 : 1;
}
